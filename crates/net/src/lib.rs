//! # dtx-net — simulated site-to-site transport
//!
//! The paper's testbed is "a cluster of eight PCs connected through an
//! Ethernet hub ... 100 Mbit/s full-duplex" (§3.1). This crate replaces
//! the physical network with an in-process simulation that preserves what
//! the concurrency-control experiments depend on: **message ordering,
//! blocking round-trips, and size-dependent latency**.
//!
//! * [`Network`] — a cloneable handle to a simulated broadcast domain.
//!   Every site [`Network::register`]s an [`Endpoint`]; messages are
//!   delayed according to the [`LatencyModel`] before being delivered to
//!   the destination's channel (FIFO per sender-receiver pair, like TCP).
//! * [`Topology`] — how delayed delivery is driven. The default,
//!   [`Topology::Reactor`], is a **sharded timer wheel**: every in-flight
//!   delayed message lives in a wheel slot, and a small fixed pool of
//!   delivery workers (default `min(8, cores)`, see [`NetConfig`]) drains
//!   the wheels — thread count is O(workers) no matter how many site
//!   pairs carry traffic, which is what lets hundred-site clusters run.
//!   [`Topology::ThreadPerLink`] keeps the previous design (one OS thread
//!   per ordered `(from, to)` pair — 56 threads at 8 sites, ~16k at 128)
//!   and [`Topology::SharedHub`] the one before that (a single global
//!   timer heap); both survive purely as the baselines `bench_net`
//!   measures the reactor against.
//! * [`LatencyModel`] — fixed + per-KiB + seeded jitter; the default is
//!   calibrated to a 100 Mbit/s switched LAN. Tests use
//!   [`LatencyModel::zero`], which delivers synchronously.
//! * [`NetStats`] — message/byte/link/thread counters for the experiment
//!   reports (the paper attributes part of total-replication's cost to
//!   "communication and synchronization overhead in all the sites").
//!
//! ## Ordering and determinism guarantees
//!
//! All topologies guarantee, per ordered `(from, to)` pair:
//!
//! 1. **FIFO** — delivery order equals send order, even when
//!    size-dependent latency or jitter computes a shorter delay for a
//!    later message (the clamp happens at send time: a message's delivery
//!    instant is never earlier than its link predecessor's).
//! 2. **Seed-deterministic jitter** — the random delay of the k-th
//!    message of a pair is a pure function of `(seed, from, to, k)`, so
//!    every link's delay stream is reproducible from the seed no matter
//!    how concurrent senders interleave globally.
//! 3. **Drain on shutdown** — [`Network::shutdown`] delivers every
//!    in-flight delayed message (per-link FIFO order preserved) before
//!    endpoints disconnect; nothing vanishes.
//!
//! Under the reactor both properties fall out of two facts: the clamp and
//! the jitter-stream position are computed at **send time** under the
//! links lock (exactly as before), and a link is pinned to one wheel
//! shard by hash, so one worker owns all of a link's messages and drains
//! them in `(deliver_at, seq)` order.
//!
//! The transport is generic over the payload type `M`; `dtx-core` provides
//! its `Message` enum and implements [`Wire`] to give payloads a size.

#![deny(missing_docs)]

pub mod socket;
pub mod wire;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use dtx_trace::{EventKind, Tracer};
use parking_lot::{Mutex, RwLock};
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifier of a site (system node) in the cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SiteId(pub u16);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Payloads must report an approximate wire size for the latency model.
pub trait Wire: Send + 'static {
    /// Approximate serialized size in bytes (default: one small frame).
    fn wire_size(&self) -> usize {
        128
    }

    /// Short static label naming the payload kind, stamped on trace
    /// events so a captured timeline can tell a `Prepare` from a
    /// `TerminateBatch` (default: `"msg"`).
    fn wire_label(&self) -> &'static str {
        "msg"
    }
}

/// Tuning knobs of the delivery machinery (only the reactor reads them;
/// the baseline topologies derive their thread count from traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Size of the reactor's delivery-worker pool — the **upper bound**
    /// on delivery threads regardless of cluster size. Workers are
    /// spawned lazily: a shard with no traffic never starts its thread.
    /// Default: `min(8, available cores)`, at least 1.
    pub workers: usize,
    /// Slots per timer wheel. With the default tick this gives each
    /// wheel a ~51 ms horizon (1024 × 50 µs); messages further out stay
    /// in their hash slot across revolutions (checked once per
    /// revolution).
    pub wheel_slots: usize,
    /// Width of one wheel slot — the scheduling granularity. Delivery
    /// happens when a slot's window has fully passed, so a message is
    /// never delivered *early*, at most one tick + scheduling noise late.
    pub wheel_tick: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        NetConfig {
            workers: cores.clamp(1, 8),
            wheel_slots: 1024,
            wheel_tick: Duration::from_micros(50),
        }
    }
}

impl NetConfig {
    /// Sets the delivery-worker pool size (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The config with every field forced into its valid range.
    fn sanitized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.wheel_slots = self.wheel_slots.max(2);
        self.wheel_tick = self.wheel_tick.max(Duration::from_micros(10));
        self
    }
}

/// How delayed delivery is driven (irrelevant under [`LatencyModel::zero`],
/// where delivery is synchronous and no threads exist).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Sharded timer-wheel reactor (default): every ordered `(from, to)`
    /// pair is hashed onto one of [`NetConfig::workers`] wheel shards;
    /// each shard's worker holds its in-flight messages in a hashed
    /// timer wheel and delivers them as their instants pass. Thread
    /// count is O(workers) — independent of the number of site pairs —
    /// while per-link FIFO and send-time jitter determinism are
    /// preserved exactly (a link lives entirely inside one shard).
    #[default]
    Reactor,
    /// One dedicated delivery thread per ordered `(from, to)` pair —
    /// the previous default ("switched" fabric). Thread count grows as
    /// sites × (sites − 1), which is why it cannot reasonably run at
    /// hundred-site scale; kept as the baseline the reactor's win is
    /// measured against, not assumed from.
    ThreadPerLink,
    /// Legacy shared hub: one global delivery thread with a single timer
    /// heap. All traffic serializes behind one sleeper — the original
    /// scaling bottleneck, kept as `bench_net`'s second baseline.
    SharedHub,
}

/// Latency model: `fixed + per_kib * size + U(0, jitter)`.
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// Propagation + protocol-stack cost per message.
    pub fixed: Duration,
    /// Serialization cost per KiB (bandwidth).
    pub per_kib: Duration,
    /// Upper bound of uniform jitter added per message.
    pub jitter: Duration,
    /// Seed for the jitter PRNG (deterministic runs).
    pub seed: u64,
}

impl LatencyModel {
    /// Synchronous delivery (tests).
    pub fn zero() -> Self {
        LatencyModel {
            fixed: Duration::ZERO,
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 0,
        }
    }

    /// 100 Mbit/s LAN: ~150 µs fixed, ~80 µs/KiB (12.5 MB/s), 50 µs
    /// jitter.
    pub fn lan(seed: u64) -> Self {
        LatencyModel {
            fixed: Duration::from_micros(150),
            per_kib: Duration::from_micros(80),
            jitter: Duration::from_micros(50),
            seed,
        }
    }

    /// True when every component is zero (fast path: no delivery threads).
    pub fn is_zero(&self) -> bool {
        self.fixed.is_zero() && self.per_kib.is_zero() && self.jitter.is_zero()
    }

    fn delay(&self, bytes: usize, rng_state: &mut u64) -> Duration {
        let mut d = self.fixed + self.per_kib * ((bytes / 1024) as u32);
        if !self.jitter.is_zero() {
            // xorshift64* — tiny, deterministic, good enough for jitter.
            let mut x = *rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            *rng_state = x;
            let r = x.wrapping_mul(0x2545F4914F6CDD1D) >> 33;
            let frac = (r as f64) / ((1u64 << 31) as f64);
            d += Duration::from_nanos((self.jitter.as_nanos() as f64 * frac) as u64);
        }
        d
    }
}

/// Whether the `k`-th send attempt on the ordered link `from → to` is
/// dropped under fault seed `seed` with drop probability
/// `per_mille`/1000: a **pure function** of its inputs, exactly like
/// [`link_delay`]. This is the function [`Network::send`] applies when
/// message drops are armed, exposed so tests (and the chaos harness's
/// replay recipe) can pin the determinism contract directly: re-running
/// a chaos schedule with the same fault seed drops the same attempts.
pub fn link_drops(seed: u64, from: SiteId, to: SiteId, k: u64, per_mille: u32) -> bool {
    if per_mille == 0 {
        return false;
    }
    let r = mix64(seed ^ 0xFA17 ^ ((from.0 as u64) << 48) ^ ((to.0 as u64) << 32) ^ k);
    (r % 1000) < per_mille as u64
}

/// The delay of the `k`-th message on the ordered link `from → to` under
/// `model`, for a payload of `bytes`: a **pure function** of its inputs.
/// This is the function [`Network::send`] applies (before the per-link
/// FIFO clamp), exposed so tests can pin the seed-determinism contract
/// directly.
pub fn link_delay(
    model: &LatencyModel,
    from: SiteId,
    to: SiteId,
    k: u64,
    bytes: usize,
) -> Duration {
    let mut rng = mix64(model.seed ^ ((from.0 as u64) << 48) ^ ((to.0 as u64) << 32) ^ k);
    model.delay(bytes, &mut rng)
}

/// A routed message.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sending site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Payload.
    pub payload: M,
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Destination site was never registered (or already shut down).
    UnknownSite(SiteId),
    /// The network has been shut down.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownSite(s) => write!(f, "no endpoint registered for site {s}"),
            NetError::Closed => write!(f, "network is shut down"),
        }
    }
}

impl std::error::Error for NetError {}

/// Message/byte/link/thread counters.
#[derive(Debug, Default)]
pub struct NetStats {
    messages: AtomicU64,
    bytes: AtomicU64,
    links: AtomicU64,
    delivery_threads: AtomicU64,
    dropped: AtomicU64,
}

impl NetStats {
    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes sent so far (per [`Wire::wire_size`]).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Distinct ordered `(from, to)` pairs that carried delayed traffic
    /// so far, under any topology. Zero under [`LatencyModel::zero`]
    /// (delivery is synchronous, no link bookkeeping exists). This
    /// counts *links*, not threads: under [`Topology::ThreadPerLink`]
    /// the two happen to coincide, under [`Topology::Reactor`] many
    /// links share one of [`NetStats::delivery_threads`] workers.
    pub fn links_active(&self) -> u64 {
        self.links.load(Ordering::Relaxed)
    }

    /// Delivery threads spawned so far: wheel-shard workers under
    /// [`Topology::Reactor`] (bounded by [`NetConfig::workers`]), one
    /// per active link under [`Topology::ThreadPerLink`], exactly 1
    /// under [`Topology::SharedHub`], 0 under [`LatencyModel::zero`].
    pub fn delivery_threads(&self) -> u64 {
        self.delivery_threads.load(Ordering::Relaxed)
    }

    /// Messages dropped by fault injection (seeded drops and partitions).
    /// These still count in [`NetStats::messages`] — they were sent; the
    /// simulated network lost them.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Armed fault state (chaos harness): seeded random message loss plus an
/// explicit set of blocked ordered links. Both are consulted at send
/// time, before delivery scheduling, so a dropped message never perturbs
/// the surviving traffic's jitter stream positions.
#[derive(Debug, Default)]
struct FaultState {
    /// Fault seed for [`link_drops`] (independent of the latency seed so
    /// chaos runs can vary loss without re-rolling delays).
    seed: u64,
    /// Drop probability per message in 1/1000.
    drop_per_mille: u32,
    /// Per ordered link: send attempts so far — the `k` of the drop
    /// stream. Tracked separately from [`LinkBook::sent`] (which only
    /// counts messages that reached delayed delivery) so the drop
    /// schedule is a pure function of attempt order under any latency
    /// model, including [`LatencyModel::zero`].
    attempts: HashMap<(SiteId, SiteId), u64>,
    /// Ordered links currently severed (partitions).
    blocked: HashSet<(SiteId, SiteId)>,
}

struct Delayed<M> {
    deliver_at: Instant,
    seq: u64,
    /// Trace identity: the message id ([`NetStats::messages`] at send
    /// time) and the payload's [`Wire::wire_label`], carried so the
    /// delivery side can stamp [`EventKind::MsgDeliver`] without
    /// re-inspecting the payload.
    msg_id: u64,
    label: &'static str,
    envelope: Envelope<M>,
}

impl<M> PartialEq for Delayed<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl<M> Eq for Delayed<M> {}
impl<M> PartialOrd for Delayed<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Delayed<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse order: BinaryHeap is a max-heap, we want earliest first;
        // ties broken by send sequence to keep FIFO.
        other
            .deliver_at
            .cmp(&self.deliver_at)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Ascending `(deliver_at, seq)` — the delivery order every drain uses.
/// Per-link FIFO follows because the send-time clamp makes `deliver_at`
/// monotone per link and `seq` (drawn under the same lock) breaks ties
/// in send order.
fn delivery_order<M>(a: &Delayed<M>, b: &Delayed<M>) -> std::cmp::Ordering {
    a.deliver_at.cmp(&b.deliver_at).then(a.seq.cmp(&b.seq))
}

/// Per-ordered-pair link bookkeeping, updated at send time under the
/// links lock: the jitter stream position, the FIFO clamp, and the queue
/// delayed messages are handed to.
struct LinkBook<M> {
    /// Messages sent on this link so far (the `k` of the jitter stream).
    sent: u64,
    /// Delivery instant of the link's latest message — the FIFO clamp: a
    /// later message is never scheduled before an earlier one, even when
    /// size-dependent latency or jitter would say otherwise. The link
    /// behaves like one TCP stream; the schedulers' termination protocol
    /// relies on this (an `Abort` must not overtake the `ExecRemote` it
    /// cancels).
    last: Instant,
    /// Where this link's delayed messages go: the link's dedicated
    /// worker queue ([`Topology::ThreadPerLink`]) or a clone of the
    /// link's wheel-shard queue ([`Topology::Reactor`]; the shard is
    /// fixed by hash, so one worker owns the whole link). `None` under
    /// [`Topology::SharedHub`] (the hub queue is global).
    tx: Option<Sender<Delayed<M>>>,
}

/// Where envelopes bound for remote-process sites go — installed by the
/// socket transport via [`Network::set_uplink`].
pub type UplinkFn<M> = Arc<dyn Fn(Envelope<M>) + Send + Sync>;

struct Inner<M> {
    endpoints: RwLock<HashMap<SiteId, Sender<Envelope<M>>>>,
    /// Sites hosted by *other OS processes* (multi-process mode):
    /// [`Network::send`] hands their traffic to the uplink instead of a
    /// local endpoint, and [`Network::sites`] lists them so broadcasts
    /// (the deadlock detector's WFG request round) reach them. Empty in
    /// single-process clusters.
    remote: RwLock<HashSet<SiteId>>,
    /// The remote-traffic sink (the socket transport's enqueue), present
    /// iff any remote site is routed.
    uplink: RwLock<Option<UplinkFn<M>>>,
    /// Fast-path flag: true when any remote site is routed, so the
    /// single-process send path pays one relaxed load, never a lock.
    remote_armed: AtomicBool,
    /// Sites that were [`Network::deregister`]ed (killed) and not yet
    /// re-registered. Traffic to them is silently dropped; traffic to a
    /// site that was *never* registered stays an error (a wiring bug,
    /// not a simulated failure).
    dead: RwLock<HashSet<SiteId>>,
    latency: LatencyModel,
    topology: Topology,
    cfg: NetConfig,
    stats: NetStats,
    /// Per ordered `(from, to)` pair: jitter position, FIFO clamp, and
    /// the link's delivery queue.
    links: Mutex<HashMap<(SiteId, SiteId), LinkBook<M>>>,
    /// Wheel-shard queues ([`Topology::Reactor`] only), spawned lazily
    /// on the first link hashed to the shard. Always locked *after*
    /// `links` (send path) — never the other way around.
    shard_txs: Mutex<Vec<Option<Sender<Delayed<M>>>>>,
    /// Legacy hub queue ([`Topology::SharedHub`] only).
    hub_tx: Mutex<Option<Sender<Delayed<M>>>>,
    seq: AtomicU64,
    /// Chaos-harness fault injection; disarmed (no drops, no partitions)
    /// by default. Guarded by its own lock, taken before `links`.
    faults: Mutex<FaultState>,
    /// Fast-path flag: true when any fault (drop rate or partition) is
    /// armed, so the default path never takes the faults lock.
    faults_armed: AtomicBool,
    /// Set by [`Network::shutdown`]: delivery workers stop sleeping and
    /// flush their remaining queue immediately.
    flushing: AtomicBool,
    /// Causal tracing ([`Network::set_tracer`]): when armed, every send,
    /// delivery and drop stamps an event into the tracer's per-site
    /// rings. `trace_armed` is the fast-path flag — the untraced hot
    /// path pays one relaxed load, never the lock.
    tracer: RwLock<Option<Arc<Tracer>>>,
    trace_armed: AtomicBool,
    /// Delivery worker handles, joined at shutdown so the drain is
    /// complete before endpoints disconnect.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<M> Inner<M> {
    /// The armed tracer, if any — one relaxed load when tracing is off.
    fn trace(&self) -> Option<Arc<Tracer>> {
        if self.trace_armed.load(Ordering::Relaxed) {
            self.tracer.read().clone()
        } else {
            None
        }
    }
}

/// A handle to the simulated network (cloneable; all clones share state).
pub struct Network<M: Send + 'static> {
    inner: Arc<Inner<M>>,
}

impl<M: Send + 'static> Clone for Network<M> {
    fn clone(&self) -> Self {
        Network {
            inner: self.inner.clone(),
        }
    }
}

/// A site's receive side.
pub struct Endpoint<M> {
    /// This endpoint's site id.
    pub site: SiteId,
    rx: Receiver<Envelope<M>>,
}

impl<M> Endpoint<M> {
    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope<M>, NetError> {
        self.rx.recv().map_err(|_| NetError::Closed)
    }

    /// Receive with timeout; `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(e) => Ok(Some(e)),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Ok(None),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }

    /// Non-blocking batch drain: returns up to `limit` queued envelopes
    /// without ever blocking. Event-driven consumers (the scheduler's
    /// single-threaded state machine) use this to interleave network
    /// intake with dispatch work in bounded slices, so a message flood
    /// cannot starve transaction progress.
    pub fn drain(&self, limit: usize) -> Vec<Envelope<M>> {
        self.rx.try_iter().take(limit).collect()
    }
}

impl<M: Wire> Network<M> {
    /// Creates a network with the given latency model, the default
    /// [`Topology::Reactor`] delivery and the default [`NetConfig`].
    /// Delivery threads are spawned lazily, and only when the model
    /// actually delays messages.
    pub fn new(latency: LatencyModel) -> Self {
        Self::with_config(latency, Topology::default(), NetConfig::default())
    }

    /// Creates a network with an explicit delivery [`Topology`] and the
    /// default [`NetConfig`].
    pub fn with_topology(latency: LatencyModel, topology: Topology) -> Self {
        Self::with_config(latency, topology, NetConfig::default())
    }

    /// Creates a network with an explicit [`Topology`] and [`NetConfig`].
    pub fn with_config(latency: LatencyModel, topology: Topology, cfg: NetConfig) -> Self {
        let cfg = cfg.sanitized();
        let inner = Arc::new(Inner {
            endpoints: RwLock::new(HashMap::new()),
            remote: RwLock::new(HashSet::new()),
            uplink: RwLock::new(None),
            remote_armed: AtomicBool::new(false),
            dead: RwLock::new(HashSet::new()),
            latency,
            topology,
            cfg,
            stats: NetStats::default(),
            links: Mutex::new(HashMap::new()),
            shard_txs: Mutex::new(vec![None; cfg.workers]),
            hub_tx: Mutex::new(None),
            seq: AtomicU64::new(0),
            faults: Mutex::new(FaultState::default()),
            faults_armed: AtomicBool::new(false),
            flushing: AtomicBool::new(false),
            tracer: RwLock::new(None),
            trace_armed: AtomicBool::new(false),
            workers: Mutex::new(Vec::new()),
        });
        if !latency.is_zero() && topology == Topology::SharedHub {
            let (tx, rx) = unbounded::<Delayed<M>>();
            *inner.hub_tx.lock() = Some(tx);
            let hub_inner = Arc::downgrade(&inner);
            let handle = std::thread::Builder::new()
                .name("dtx-net-hub".into())
                .spawn(move || hub_loop(rx, hub_inner))
                .expect("spawn hub thread");
            inner.workers.lock().push(handle);
            inner.stats.delivery_threads.fetch_add(1, Ordering::Relaxed);
        }
        Network { inner }
    }

    /// The delivery topology this network was created with.
    pub fn topology(&self) -> Topology {
        self.inner.topology
    }

    /// The delivery configuration this network was created with
    /// (sanitized: `workers ≥ 1`, valid wheel geometry).
    pub fn net_config(&self) -> NetConfig {
        self.inner.cfg
    }

    /// Registers `site`, returning its endpoint. Re-registering replaces
    /// the previous endpoint (old receiver disconnects).
    pub fn register(&self, site: SiteId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        self.inner.endpoints.write().insert(site, tx);
        self.inner.dead.write().remove(&site);
        Endpoint { site, rx }
    }

    /// Removes `site`'s endpoint: the site is dead to the network. Later
    /// (and already in-flight) traffic to it is silently discarded —
    /// exactly what a real network does to a dead host — until a
    /// [`Network::register`] brings the site back. The kill half of the
    /// chaos harness's site kill/restart.
    pub fn deregister(&self, site: SiteId) {
        self.inner.endpoints.write().remove(&site);
        self.inner.dead.write().insert(site);
    }

    /// Arms seed-deterministic message loss: every send attempt is
    /// dropped with probability `per_mille`/1000, decided by the pure
    /// function [`link_drops`] over `(seed, from, to, attempt#)` — so a
    /// chaos schedule replays exactly from its seed. `per_mille == 0`
    /// disarms random loss (partitions are separate). Arming resets the
    /// per-link attempt counters so a replay starts the stream over.
    pub fn set_message_drops(&self, seed: u64, per_mille: u32) {
        let mut f = self.inner.faults.lock();
        f.seed = seed;
        f.drop_per_mille = per_mille.min(1000);
        f.attempts.clear();
        let armed = f.drop_per_mille > 0 || !f.blocked.is_empty();
        self.inner.faults_armed.store(armed, Ordering::SeqCst);
    }

    /// Severs the ordered link `from → to`: every send on it is dropped
    /// until [`Network::heal_link`]. Block both directions for a full
    /// partition; one direction alone models the asymmetric silent-drop
    /// failure (requests arrive, answers vanish).
    pub fn block_link(&self, from: SiteId, to: SiteId) {
        let mut f = self.inner.faults.lock();
        f.blocked.insert((from, to));
        self.inner.faults_armed.store(true, Ordering::SeqCst);
    }

    /// Restores the ordered link `from → to`.
    pub fn heal_link(&self, from: SiteId, to: SiteId) {
        let mut f = self.inner.faults.lock();
        f.blocked.remove(&(from, to));
        let armed = f.drop_per_mille > 0 || !f.blocked.is_empty();
        self.inner.faults_armed.store(armed, Ordering::SeqCst);
    }

    /// Fully partitions `a` from `b` (both directions blocked).
    pub fn partition(&self, a: SiteId, b: SiteId) {
        self.block_link(a, b);
        self.block_link(b, a);
    }

    /// Heals a full partition of `a` and `b`.
    pub fn heal(&self, a: SiteId, b: SiteId) {
        self.heal_link(a, b);
        self.heal_link(b, a);
    }

    /// Sends `payload` from `from` to `to`, applying the latency model.
    pub fn send(&self, from: SiteId, to: SiteId, payload: M) -> Result<(), NetError> {
        let bytes = payload.wire_size();
        // The pre-increment messages counter doubles as the message's
        // trace identity: unique, allocation-free, and identical between
        // a traced and an untraced run of the same seed.
        let msg_id = self.inner.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.inner
            .stats
            .bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
        let tracer = self.inner.trace();
        let label = if tracer.is_some() {
            payload.wire_label()
        } else {
            "msg"
        };
        // Fault injection (chaos harness): partitions and seeded drops
        // swallow the message *after* the stats counted it — it was
        // sent; the simulated network lost it. Ok(()) to the sender,
        // like any datagram loss.
        if self.inner.faults_armed.load(Ordering::Relaxed) {
            let mut f = self.inner.faults.lock();
            if f.blocked.contains(&(from, to)) {
                self.inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                if let Some(tr) = &tracer {
                    trace_send(tr, msg_id, from, to, label, 0, bytes);
                    tr.record(
                        from.0,
                        EventKind::MsgDrop {
                            msg: msg_id,
                            from: from.0,
                            to: to.0,
                        },
                    );
                }
                return Ok(());
            }
            if f.drop_per_mille > 0 {
                let k = f.attempts.entry((from, to)).or_insert(0);
                let attempt = *k;
                *k += 1;
                if link_drops(f.seed, from, to, attempt, f.drop_per_mille) {
                    self.inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    if let Some(tr) = &tracer {
                        trace_send(tr, msg_id, from, to, label, 0, bytes);
                        tr.record(
                            from.0,
                            EventKind::MsgDrop {
                                msg: msg_id,
                                from: from.0,
                                to: to.0,
                            },
                        );
                    }
                    return Ok(());
                }
            }
        }
        // Multi-process routing: a site hosted by another OS process has
        // no local endpoint — its traffic leaves through the uplink (the
        // socket transport encodes and ships it). Checked after fault
        // injection so partitions and seeded drops apply to remote links
        // exactly like local ones.
        if self.inner.remote_armed.load(Ordering::Relaxed) && self.inner.remote.read().contains(&to)
        {
            if let Some(tr) = &tracer {
                trace_send(tr, msg_id, from, to, label, 0, bytes);
            }
            let uplink = self.inner.uplink.read().clone();
            return match uplink {
                Some(up) => {
                    up(Envelope { from, to, payload });
                    Ok(())
                }
                None => Err(NetError::UnknownSite(to)),
            };
        }
        let envelope = Envelope { from, to, payload };
        if self.inner.latency.is_zero() {
            let endpoints = self.inner.endpoints.read();
            let Some(dest) = endpoints.get(&to) else {
                // A killed site eats traffic silently; a site that never
                // existed is a wiring error.
                if self.inner.dead.read().contains(&to) {
                    self.inner.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    if let Some(tr) = &tracer {
                        trace_send(tr, msg_id, from, to, label, tr.now_ns(), bytes);
                        tr.record(
                            from.0,
                            EventKind::MsgDrop {
                                msg: msg_id,
                                from: from.0,
                                to: to.0,
                            },
                        );
                    }
                    return Ok(());
                }
                return Err(NetError::UnknownSite(to));
            };
            if let Some(tr) = &tracer {
                trace_send(tr, msg_id, from, to, label, tr.now_ns(), bytes);
                tr.record(
                    to.0,
                    EventKind::MsgDeliver {
                        msg: msg_id,
                        from: from.0,
                        to: to.0,
                        label,
                    },
                );
            }
            return dest.send(envelope).map_err(|_| NetError::UnknownSite(to));
        }
        // Delayed path. Under the links lock: advance the link's jitter
        // stream (delay = pure function of (seed, from, to, k) — see
        // [`link_delay`]), apply the FIFO clamp, and hand the message to
        // the link's queue (reactor shard / dedicated worker / hub).
        let now = Instant::now();
        let mut links = self.inner.links.lock();
        // The global tie-break seq is drawn under the same lock that
        // assigns the link position k: every drain breaks equal
        // deliver_at (the clamp's doing) by seq, so seq order and k order
        // must agree per link or concurrent same-pair senders could have
        // a clamped later message pop first.
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let book = links.entry((from, to)).or_insert_with(|| {
            self.inner.stats.links.fetch_add(1, Ordering::Relaxed);
            LinkBook {
                sent: 0,
                last: now,
                tx: None,
            }
        });
        let k = book.sent;
        book.sent += 1;
        let delay = link_delay(&self.inner.latency, from, to, k, bytes);
        // FIFO clamp: never earlier than the link's previous message.
        let deliver_at = (now + delay).max(book.last);
        book.last = deliver_at;
        if let Some(tr) = &tracer {
            // Recorded under the links lock, so the sender ring's order
            // agrees with the link position k — which is what the
            // checker's FIFO law compares deliveries against.
            let deliver_at_ns = tr.now_ns() + deliver_at.duration_since(now).as_nanos() as u64;
            trace_send(tr, msg_id, from, to, label, deliver_at_ns, bytes);
        }
        let delayed = Delayed {
            deliver_at,
            seq,
            msg_id,
            label,
            envelope,
        };
        match self.inner.topology {
            Topology::Reactor => {
                if book.tx.is_none() {
                    if self.inner.flushing.load(Ordering::Relaxed) {
                        return Err(NetError::Closed);
                    }
                    // Pin the link to its wheel shard (pure hash of the
                    // pair) and make sure the shard's worker runs; the
                    // link's whole lifetime stays on this one worker.
                    let shard = (mix64(((from.0 as u64) << 16) ^ (to.0 as u64)) as usize)
                        % self.inner.cfg.workers;
                    let mut shards = self.inner.shard_txs.lock();
                    if shards[shard].is_none() {
                        let (tx, rx) = unbounded::<Delayed<M>>();
                        let weak = Arc::downgrade(&self.inner);
                        let cfg = self.inner.cfg;
                        let handle = std::thread::Builder::new()
                            .name(format!("dtx-net-wheel-{shard}"))
                            .spawn(move || wheel_loop(rx, weak, cfg))
                            .expect("spawn wheel worker");
                        self.inner.workers.lock().push(handle);
                        self.inner
                            .stats
                            .delivery_threads
                            .fetch_add(1, Ordering::Relaxed);
                        shards[shard] = Some(tx);
                    }
                    book.tx = shards[shard].clone();
                }
                let tx = book.tx.as_ref().expect("just ensured");
                tx.send(delayed).map_err(|_| NetError::Closed)
            }
            Topology::ThreadPerLink => {
                if book.tx.is_none() {
                    if self.inner.flushing.load(Ordering::Relaxed) {
                        return Err(NetError::Closed);
                    }
                    let (tx, rx) = unbounded::<Delayed<M>>();
                    let weak = Arc::downgrade(&self.inner);
                    let handle = std::thread::Builder::new()
                        .name(format!("dtx-net-link-{from}-{to}"))
                        .spawn(move || link_loop(rx, weak))
                        .expect("spawn link worker");
                    self.inner.workers.lock().push(handle);
                    self.inner
                        .stats
                        .delivery_threads
                        .fetch_add(1, Ordering::Relaxed);
                    book.tx = Some(tx);
                }
                let tx = book.tx.as_ref().expect("just ensured");
                tx.send(delayed).map_err(|_| NetError::Closed)
            }
            Topology::SharedHub => {
                let hub = self.inner.hub_tx.lock();
                match hub.as_ref() {
                    Some(hub_tx) => hub_tx.send(delayed).map_err(|_| NetError::Closed),
                    None => Err(NetError::Closed),
                }
            }
        }
    }

    /// Registered site ids (sorted) — local endpoints plus any
    /// remote-process sites routed through the uplink, so cluster-wide
    /// broadcasts (e.g. the deadlock detector's WFG round) span process
    /// boundaries without the caller knowing which sites are remote.
    pub fn sites(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.inner.endpoints.read().keys().copied().collect();
        v.extend(self.inner.remote.read().iter().copied());
        v.sort();
        v.dedup();
        v
    }

    /// Routes `site` through the uplink: it is hosted by another OS
    /// process, reachable only via [`Network::set_uplink`]'s sink. Listed
    /// by [`Network::sites`]; sending to it without an uplink installed
    /// is [`NetError::UnknownSite`].
    pub fn add_remote_site(&self, site: SiteId) {
        self.inner.remote.write().insert(site);
        self.inner.remote_armed.store(true, Ordering::SeqCst);
    }

    /// Installs (or clears) the remote-traffic sink. The socket transport
    /// installs a closure that encodes the envelope and queues it on the
    /// destination process's connection.
    pub fn set_uplink(&self, uplink: Option<UplinkFn<M>>) {
        *self.inner.uplink.write() = uplink;
    }

    /// Delivers an envelope straight to a *local* endpoint, bypassing the
    /// latency model, stats and fault injection — the ingress path for
    /// messages that arrived from another process over the socket
    /// transport (their latency already happened on the real wire).
    pub fn deliver(&self, envelope: Envelope<M>) -> Result<(), NetError> {
        let endpoints = self.inner.endpoints.read();
        match endpoints.get(&envelope.to) {
            Some(dest) => dest.send(envelope).map_err(|_| NetError::Closed),
            None => Err(NetError::UnknownSite(envelope.to)),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Arms causal tracing: every subsequent send, delivery and drop is
    /// stamped into `tracer`'s per-site rings ([`EventKind::MsgSend`]
    /// with the scheduled delivery instant, [`EventKind::MsgDeliver`],
    /// [`EventKind::MsgDrop`]). Tracing only observes — it never touches
    /// the jitter or drop streams, so a traced run and an untraced run
    /// of the same seed deliver identically.
    pub fn set_tracer(&self, tracer: Option<Arc<Tracer>>) {
        let armed = tracer.is_some();
        *self.inner.tracer.write() = tracer;
        self.inner.trace_armed.store(armed, Ordering::SeqCst);
    }

    /// Shuts the network down **after draining**: every delayed message
    /// already accepted by [`Network::send`] is delivered (per-link FIFO
    /// order preserved; remaining sleeps are skipped, so the flush is
    /// prompt) before endpoints disconnect. Sends racing the shutdown
    /// either make it into a queue — and are then delivered — or get
    /// [`NetError::Closed`]; nothing vanishes silently.
    pub fn shutdown(&self) {
        // 1. Flag workers to stop sleeping; queued messages flush.
        self.inner.flushing.store(true, Ordering::SeqCst);
        // 2. Disconnect the queues: each worker drains what is buffered
        //    and exits on the hangup.
        for book in self.inner.links.lock().values_mut() {
            book.tx = None;
        }
        for shard in self.inner.shard_txs.lock().iter_mut() {
            *shard = None;
        }
        *self.inner.hub_tx.lock() = None;
        // 3. Join the workers — the drain is complete when this returns.
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for h in workers {
            let _ = h.join();
        }
        // 4. Only now do endpoints disconnect.
        self.inner.endpoints.write().clear();
    }
}

/// splitmix64 finalizer: spreads structured seeds (pair ids, counters)
/// into well-mixed PRNG states.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) | 1
}

/// Stamps a [`EventKind::MsgSend`] into the sender's ring.
fn trace_send(
    tr: &Tracer,
    msg: u64,
    from: SiteId,
    to: SiteId,
    label: &'static str,
    deliver_at_ns: u64,
    bytes: usize,
) {
    tr.record(
        from.0,
        EventKind::MsgSend {
            msg,
            from: from.0,
            to: to.0,
            label,
            deliver_at_ns,
            bytes: bytes.min(u32::MAX as usize) as u32,
        },
    );
}

/// Stamps the fate of a delayed message at its delivery point: a
/// [`EventKind::MsgDeliver`] in the receiver's ring when the endpoint
/// took it, a [`EventKind::MsgDrop`] when the destination was dead.
fn trace_delivery<M>(tr: &Tracer, d: &Delayed<M>, delivered: bool) {
    let (from, to) = (d.envelope.from.0, d.envelope.to.0);
    let kind = if delivered {
        EventKind::MsgDeliver {
            msg: d.msg_id,
            from,
            to,
            label: d.label,
        }
    } else {
        EventKind::MsgDrop {
            msg: d.msg_id,
            from,
            to,
        }
    };
    tr.record(to, kind);
}

/// Delivers `d` to its destination endpoint (drops it when the endpoint
/// is gone — exactly what a real network does to a dead host's traffic).
fn deliver<M: Send + 'static>(inner: &Inner<M>, d: Delayed<M>) {
    let endpoints = inner.endpoints.read();
    let delivered = endpoints.get(&d.envelope.to).cloned();
    drop(endpoints);
    if let Some(tr) = inner.trace() {
        trace_delivery(&tr, &d, delivered.is_some());
    }
    if let Some(dest) = delivered {
        let _ = dest.send(d.envelope);
    }
}

/// Hands a due batch out **in its existing order** under a single
/// endpoints read-lock acquisition. The hot path builds `due` already
/// link-ordered — overdue arrivals in channel order, then fired slots in
/// window order with stable per-slot drains — so no sort is needed (the
/// reactor's per-message costs are what bound one worker's drain rate).
fn deliver_batch<M: Send + 'static>(inner: &Inner<M>, due: &mut Vec<Delayed<M>>) {
    if due.is_empty() {
        return;
    }
    let tracer = inner.trace();
    let endpoints = inner.endpoints.read();
    for d in due.drain(..) {
        let dest = endpoints.get(&d.envelope.to);
        if let Some(tr) = &tracer {
            trace_delivery(tr, &d, dest.is_some());
        }
        if let Some(dest) = dest {
            let _ = dest.send(d.envelope);
        }
    }
}

/// Shutdown-flush variant of [`deliver_batch`]: the batch comes from
/// [`Wheel::drain_all`] (slot ring order, possibly several revolutions
/// deep), so it is first sorted into `(deliver_at, seq)` delivery order
/// — which preserves per-link FIFO exactly (monotone clamp + seq ties).
fn deliver_batch_sorted<M: Send + 'static>(inner: &Inner<M>, due: &mut Vec<Delayed<M>>) {
    due.sort_unstable_by(delivery_order);
    deliver_batch(inner, due);
}

/// One wheel shard's state ([`Topology::Reactor`]): a hashed timer wheel
/// whose slot index is the message's delivery tick modulo the slot
/// count. Entries further than one revolution out simply stay in their
/// slot across passes (the due check is against the slot window's end,
/// so they fire on the revolution that reaches their instant).
struct Wheel<M> {
    slots: Vec<Vec<Delayed<M>>>,
    tick: Duration,
    /// `tick` in nanoseconds (u64 arithmetic on the hot path; u64 nanos
    /// cover ~585 years of wheel lifetime).
    tick_ns: u64,
    origin: Instant,
    /// Index of the slot whose window fires next.
    cursor: usize,
    /// Start of the cursor slot's window. Invariant: every message with
    /// `deliver_at < cursor_time` has left the wheel — which is what
    /// makes the overdue fast path in [`Wheel::insert`] order-safe.
    cursor_time: Instant,
    /// Messages currently in the wheel.
    pending: usize,
}

impl<M> Wheel<M> {
    fn new(cfg: NetConfig) -> Self {
        let origin = Instant::now();
        Wheel {
            slots: (0..cfg.wheel_slots).map(|_| Vec::new()).collect(),
            tick: cfg.wheel_tick,
            tick_ns: cfg.wheel_tick.as_nanos() as u64,
            origin,
            cursor: 0,
            cursor_time: origin,
            pending: 0,
        }
    }

    fn slot_of(&self, at: Instant) -> usize {
        ((at.duration_since(self.origin).as_nanos() as u64 / self.tick_ns) as usize)
            % self.slots.len()
    }

    /// Files a message into its slot — or straight into `due` when its
    /// instant already lies behind the cursor (the wheel invariant
    /// guarantees every earlier message of the same link is already out,
    /// so delivering it in this batch cannot reorder the link).
    fn insert(&mut self, d: Delayed<M>, due: &mut Vec<Delayed<M>>) {
        if d.deliver_at < self.cursor_time {
            due.push(d);
        } else {
            let idx = self.slot_of(d.deliver_at);
            self.slots[idx].push(d);
            self.pending += 1;
        }
    }

    /// Fires every slot whose window has fully passed, moving due
    /// entries (instant inside the fired window) into `due` — stably, so
    /// a slot's per-link insertion order (= send order) carries straight
    /// through to delivery order. Entries for later revolutions stay, in
    /// order. With an empty wheel the cursor snaps forward instead of
    /// stepping through idle slots one by one.
    fn advance(&mut self, now: Instant, due: &mut Vec<Delayed<M>>) {
        if self.pending == 0 {
            // Nothing can fire; realign the cursor with the clock so a
            // long idle gap costs O(1) instead of one step per tick.
            let ticks = now.duration_since(self.origin).as_nanos() as u64 / self.tick_ns;
            self.cursor = (ticks as usize) % self.slots.len();
            // u64 nanos throughout — a u32 tick product would wrap after
            // ~2.5 days of shard uptime and desync cursor_time from
            // cursor, stalling the shard in a days-long catch-up loop.
            self.cursor_time = self.origin + Duration::from_nanos(ticks * self.tick_ns);
            return;
        }
        while self.cursor_time + self.tick <= now {
            let end = self.cursor_time + self.tick;
            let slot = &mut self.slots[self.cursor];
            if slot.iter().all(|d| d.deliver_at < end) {
                // Common case — no entry waits for a later revolution
                // (experiment delays sit far inside one wheel horizon):
                // the whole slot moves, order intact, no per-entry shuffle.
                self.pending -= slot.len();
                due.append(slot);
            } else {
                let mut keep = Vec::new();
                for d in slot.drain(..) {
                    if d.deliver_at < end {
                        self.pending -= 1;
                        due.push(d);
                    } else {
                        keep.push(d);
                    }
                }
                *slot = keep;
            }
            self.cursor = (self.cursor + 1) % self.slots.len();
            self.cursor_time = end;
        }
    }

    /// Empties the whole wheel into `due` (shutdown flush).
    fn drain_all(&mut self, due: &mut Vec<Delayed<M>>) {
        for slot in &mut self.slots {
            due.append(slot);
        }
        self.pending = 0;
    }

    /// How long until the next slot holding any entry could fire; `None`
    /// when the wheel is empty. Entries bound for a later revolution make
    /// this a spurious-wake *underestimate*, never an oversleep.
    fn next_fire(&self, now: Instant) -> Option<Duration> {
        if self.pending == 0 {
            return None;
        }
        for off in 0..self.slots.len() {
            let idx = (self.cursor + off) % self.slots.len();
            if !self.slots[idx].is_empty() {
                let fire_at = self.cursor_time + self.tick * (off as u32 + 1);
                return Some(fire_at.saturating_duration_since(now));
            }
        }
        None
    }
}

/// One reactor delivery worker ([`Topology::Reactor`]): owns the timer
/// wheel of its shard. Messages arrive already FIFO-clamped (monotone
/// `deliver_at` per link) and a link is pinned to exactly one shard, so
/// stable slot drains preserve per-link FIFO without any sorting — and a
/// pool of size 1 additionally delivers across links in `deliver_at`
/// order at wheel-tick granularity (later windows never fire before
/// earlier ones). On flush (shutdown) the wheel and queue drain
/// completely, sorted into `(deliver_at, seq)` order, without sleeping.
fn wheel_loop<M: Send + 'static>(
    rx: Receiver<Delayed<M>>,
    inner: std::sync::Weak<Inner<M>>,
    cfg: NetConfig,
) {
    // A busy worker (≥ this many messages moved in one pass) switches to
    // poll mode: it naps without blocking on its queue, so senders pay
    // no receiver-wake on every push and the next pass drains a batch.
    const BUSY: usize = 32;
    let mut wheel: Wheel<M> = Wheel::new(cfg);
    let mut due: Vec<Delayed<M>> = Vec::new();
    let poll_nap = cfg.wheel_tick.min(Duration::from_micros(100));
    loop {
        // Intake everything queued right now.
        let mut disconnected = false;
        let mut moved = 0usize;
        loop {
            match rx.try_recv() {
                Ok(d) => {
                    wheel.insert(d, &mut due);
                    moved += 1;
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        let Some(strong) = inner.upgrade() else {
            return; // network dropped without shutdown: nobody listens
        };
        if disconnected || strong.flushing.load(Ordering::Relaxed) {
            // Shutdown flush: everything goes out now, in delivery order,
            // with no sleeps. The queue is (or is about to be)
            // disconnected, so loop until the hangup delivers the rest.
            wheel.drain_all(&mut due);
            deliver_batch_sorted(&strong, &mut due);
            if disconnected {
                return;
            }
            drop(strong);
            match rx.recv() {
                Ok(d) => {
                    due.push(d);
                    continue;
                }
                Err(_) => return,
            }
        }
        // Fire every slot whose window has passed and deliver the batch.
        let now = Instant::now();
        wheel.advance(now, &mut due);
        moved += due.len();
        deliver_batch(&strong, &mut due);
        drop(strong);
        if moved >= BUSY {
            // Poll mode: traffic is flowing. Nap briefly *without*
            // parking on the queue — pushes stay wake-free and the next
            // pass drains whatever accumulated as one batch.
            std::thread::sleep(poll_nap);
            continue;
        }
        // Idle(ish): block until the next candidate slot, a new message,
        // or the periodic liveness check (the weak upgrade above notices
        // a dropped network).
        let wait = wheel
            .next_fire(now)
            .unwrap_or(Duration::from_millis(50))
            .clamp(Duration::from_micros(10), Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(d) => wheel.insert(d, &mut due),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Next iteration's intake sees the hangup and flushes.
            }
        }
    }
}

/// One link's delivery worker ([`Topology::ThreadPerLink`]): messages
/// arrive already FIFO-clamped (monotone `deliver_at`), so the worker
/// sleeps until each message's instant and hands it to the endpoint —
/// queue order **is** delivery order. When the network flushes (shutdown)
/// the sleep is skipped and the backlog drains immediately; the worker
/// exits when its queue disconnects.
fn link_loop<M: Send + 'static>(rx: Receiver<Delayed<M>>, inner: std::sync::Weak<Inner<M>>) {
    while let Ok(d) = rx.recv() {
        let Some(inner) = inner.upgrade() else {
            return; // network dropped without shutdown: nobody listens
        };
        sleep_until_or_flush(&inner, d.deliver_at);
        deliver(&inner, d);
    }
}

/// Sleeps until `deadline`, waking early when the network starts
/// flushing. Sliced so a shutdown never waits out a long in-progress
/// delay; experiment delays (µs–ms) fit in one slice.
fn sleep_until_or_flush<M>(inner: &Inner<M>, deadline: Instant) {
    const SLICE: Duration = Duration::from_millis(5);
    while !inner.flushing.load(Ordering::Relaxed) {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(SLICE));
    }
}

/// The legacy shared hub ([`Topology::SharedHub`]): one global timer heap
/// ordered by `(deliver_at, seq)` — per-link FIFO holds because send-time
/// clamping makes `deliver_at` monotone per link and `seq` breaks ties in
/// send order. Every delivery funnels through this single thread, which
/// is the head-of-line bottleneck the sharded topologies remove. On
/// disconnect (shutdown) the heap flushes in order without sleeping.
fn hub_loop<M: Send + 'static>(rx: Receiver<Delayed<M>>, inner: std::sync::Weak<Inner<M>>) {
    let mut queue: BinaryHeap<Delayed<M>> = BinaryHeap::new();
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while queue.peek().map(|d| d.deliver_at <= now).unwrap_or(false) {
            let d = queue.pop().expect("peeked");
            if let Some(inner) = inner.upgrade() {
                deliver(&inner, d);
            } else {
                return; // network dropped
            }
        }
        // Wait for the next due time or a new message.
        let wait = queue
            .peek()
            .map(|d| d.deliver_at.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait.max(Duration::from_micros(10))) {
            Ok(d) => queue.push(d),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if inner.upgrade().is_none() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                // Shutdown: flush the backlog in heap order, no sleeps.
                while let Some(d) = queue.pop() {
                    let Some(inner) = inner.upgrade() else { return };
                    deliver(&inner, d);
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_TOPOLOGIES: [Topology; 3] = [
        Topology::Reactor,
        Topology::ThreadPerLink,
        Topology::SharedHub,
    ];

    #[derive(Debug, PartialEq)]
    struct Msg(u32);
    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            64
        }
    }

    #[test]
    fn zero_latency_delivers_synchronously() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        net.send(SiteId(1), SiteId(0), Msg(7)).unwrap();
        let e = a.try_recv().expect("synchronous delivery");
        assert_eq!(e.payload, Msg(7));
        assert_eq!(e.from, SiteId(1));
        assert_eq!(net.stats().messages(), 1);
        assert_eq!(net.stats().bytes(), 64);
        assert_eq!(net.stats().links_active(), 0, "no links at zero latency");
        assert_eq!(net.stats().delivery_threads(), 0, "no threads either");
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let _a = net.register(SiteId(0));
        assert_eq!(
            net.send(SiteId(0), SiteId(9), Msg(1)),
            Err(NetError::UnknownSite(SiteId(9)))
        );
    }

    #[test]
    fn fifo_order_preserved_same_pair() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        for i in 0..100 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        for i in 0..100 {
            assert_eq!(a.recv().unwrap().payload, Msg(i));
        }
    }

    #[test]
    fn latency_delays_delivery() {
        let model = LatencyModel {
            fixed: Duration::from_millis(20),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 1,
        };
        let net: Network<Msg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let t0 = Instant::now();
        net.send(SiteId(1), SiteId(0), Msg(1)).unwrap();
        // Not there immediately.
        assert!(a.try_recv().is_none());
        let e = a
            .recv_timeout(Duration::from_millis(500))
            .unwrap()
            .expect("delivered");
        assert_eq!(e.payload, Msg(1));
        assert!(
            t0.elapsed() >= Duration::from_millis(18),
            "elapsed {:?}",
            t0.elapsed()
        );
        assert_eq!(net.stats().links_active(), 1);
        assert_eq!(net.stats().delivery_threads(), 1, "one wheel shard woke");
        net.shutdown();
    }

    #[test]
    fn delayed_messages_keep_order_with_equal_delay() {
        let model = LatencyModel {
            fixed: Duration::from_millis(5),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 1,
        };
        let net: Network<Msg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        for i in 0..20 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        for i in 0..20 {
            let e = a
                .recv_timeout(Duration::from_millis(500))
                .unwrap()
                .expect("delivered");
            assert_eq!(e.payload, Msg(i));
        }
        net.shutdown();
    }

    #[derive(Debug, PartialEq)]
    struct SizedMsg(u32, usize);
    impl Wire for SizedMsg {
        fn wire_size(&self) -> usize {
            self.1
        }
    }

    #[test]
    fn fifo_preserved_despite_size_dependent_latency() {
        // A large message followed by a small one on the same link: the
        // small one's computed delay is shorter, but the per-pair FIFO
        // clamp must keep delivery in send order.
        let model = LatencyModel {
            fixed: Duration::from_millis(1),
            per_kib: Duration::from_millis(10),
            jitter: Duration::from_micros(500),
            seed: 3,
        };
        for topology in ALL_TOPOLOGIES {
            let net: Network<SizedMsg> = Network::with_topology(model, topology);
            let a = net.register(SiteId(0));
            let _b = net.register(SiteId(1));
            net.send(SiteId(1), SiteId(0), SizedMsg(0, 64 * 1024))
                .unwrap();
            net.send(SiteId(1), SiteId(0), SizedMsg(1, 16)).unwrap();
            for i in 0..2 {
                let e = a
                    .recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .expect("delivered");
                assert_eq!(
                    e.payload.0, i,
                    "messages must arrive in send order ({topology:?})"
                );
            }
            net.shutdown();
        }
    }

    #[test]
    fn independent_links_deliver_concurrently() {
        // A backlog on link 1→0 must not delay link 2→0: the fast
        // message overtakes the other link's queue (cross-link ordering
        // is not promised; per-link FIFO is).
        let model = LatencyModel {
            fixed: Duration::from_millis(30),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 7,
        };
        let net: Network<SizedMsg> = Network::new(model);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let _c = net.register(SiteId(2));
        for i in 0..5 {
            net.send(SiteId(1), SiteId(0), SizedMsg(i, 64)).unwrap();
        }
        net.send(SiteId(2), SiteId(0), SizedMsg(100, 64)).unwrap();
        let mut got = Vec::new();
        for _ in 0..6 {
            got.push(
                a.recv_timeout(Duration::from_secs(5))
                    .unwrap()
                    .expect("delivered")
                    .payload
                    .0,
            );
        }
        assert_eq!(net.stats().links_active(), 2);
        // Per-link FIFO: 0..5 appear in order regardless of interleaving.
        let link1: Vec<u32> = got.iter().copied().filter(|&v| v < 100).collect();
        assert_eq!(link1, vec![0, 1, 2, 3, 4]);
        assert!(got.contains(&100));
        net.shutdown();
    }

    #[test]
    fn reactor_bounds_delivery_threads() {
        // Many more links than workers: every pair of a 6-site all-to-all
        // mesh carries traffic, yet the thread count stays at the pool
        // bound while per-link FIFO holds.
        let model = LatencyModel {
            fixed: Duration::from_millis(2),
            per_kib: Duration::ZERO,
            jitter: Duration::from_micros(200),
            seed: 11,
        };
        let cfg = NetConfig::default().with_workers(3);
        let net: Network<Msg> = Network::with_config(model, Topology::Reactor, cfg);
        let endpoints: Vec<_> = (0..6).map(|s| net.register(SiteId(s))).collect();
        for round in 0..10u32 {
            for from in 0..6u16 {
                for to in 0..6u16 {
                    if from != to {
                        net.send(SiteId(from), SiteId(to), Msg(round)).unwrap();
                    }
                }
            }
        }
        for ep in &endpoints {
            let mut next = [0u32; 6];
            for _ in 0..50 {
                let e = ep
                    .recv_timeout(Duration::from_secs(10))
                    .unwrap()
                    .expect("delivered");
                assert_eq!(e.payload.0, next[e.from.0 as usize], "per-link FIFO");
                next[e.from.0 as usize] += 1;
            }
        }
        assert_eq!(net.stats().links_active(), 30, "every ordered pair counted");
        assert!(
            net.stats().delivery_threads() <= 3,
            "pool bound holds: {} threads",
            net.stats().delivery_threads()
        );
        net.shutdown();
    }

    #[test]
    fn shutdown_flushes_in_flight_messages() {
        // The fix pinned here: in-flight delayed messages must NOT vanish
        // on shutdown — every accepted message is delivered, in link FIFO
        // order, before endpoints disconnect.
        let model = LatencyModel {
            fixed: Duration::from_millis(200),
            per_kib: Duration::ZERO,
            jitter: Duration::ZERO,
            seed: 5,
        };
        for topology in ALL_TOPOLOGIES {
            let net: Network<Msg> = Network::with_topology(model, topology);
            let a = net.register(SiteId(0));
            let _b = net.register(SiteId(1));
            let _c = net.register(SiteId(2));
            for i in 0..10 {
                net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
                net.send(SiteId(2), SiteId(0), Msg(100 + i)).unwrap();
            }
            let t0 = Instant::now();
            net.shutdown();
            assert!(
                t0.elapsed() < Duration::from_millis(150),
                "flush skips remaining sleeps ({topology:?}: {:?})",
                t0.elapsed()
            );
            let got: Vec<u32> = a.drain(100).iter().map(|e| e.payload.0).collect();
            assert_eq!(got.len(), 20, "nothing vanished ({topology:?})");
            let link1: Vec<u32> = got.iter().copied().filter(|&v| v < 100).collect();
            let link2: Vec<u32> = got.iter().copied().filter(|&v| v >= 100).collect();
            assert_eq!(link1, (0..10).collect::<Vec<_>>(), "{topology:?}");
            assert_eq!(link2, (100..110).collect::<Vec<_>>(), "{topology:?}");
            // After the drain, the endpoint reports closure.
            assert!(matches!(a.recv(), Err(NetError::Closed)));
        }
    }

    #[test]
    fn drain_returns_batch_without_blocking() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        assert!(a.drain(16).is_empty(), "empty queue drains to nothing");
        for i in 0..10 {
            net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
        }
        let batch = a.drain(4);
        assert_eq!(
            batch.iter().map(|e| e.payload.0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(a.drain(100).len(), 6, "remainder drains in order");
    }

    #[test]
    fn recv_timeout_returns_none_when_idle() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
    }

    #[test]
    fn sites_listing() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let _e0 = net.register(SiteId(2));
        let _e1 = net.register(SiteId(0));
        assert_eq!(net.sites(), vec![SiteId(0), SiteId(2)]);
    }

    #[test]
    fn shutdown_disconnects_endpoints() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        net.shutdown();
        assert!(matches!(a.recv(), Err(NetError::Closed)));
        assert!(net.send(SiteId(0), SiteId(0), Msg(1)).is_err());
    }

    #[test]
    fn net_config_sanitizes_degenerate_values() {
        let cfg = NetConfig {
            workers: 0,
            wheel_slots: 0,
            wheel_tick: Duration::ZERO,
        };
        let net: Network<Msg> = Network::with_config(LatencyModel::zero(), Topology::Reactor, cfg);
        let sane = net.net_config();
        assert_eq!(sane.workers, 1);
        assert!(sane.wheel_slots >= 2);
        assert!(sane.wheel_tick >= Duration::from_micros(10));
    }

    #[test]
    fn seeded_drops_replay_exactly_and_count() {
        // The chaos contract: the k-th attempt's fate is a pure function
        // of (seed, link, k) — two runs with the same seed lose exactly
        // the same messages.
        let fate: Vec<bool> = (0..200)
            .map(|k| link_drops(99, SiteId(0), SiteId(1), k, 250))
            .collect();
        let replay: Vec<bool> = (0..200)
            .map(|k| link_drops(99, SiteId(0), SiteId(1), k, 250))
            .collect();
        assert_eq!(fate, replay);
        let losses = fate.iter().filter(|&&d| d).count();
        assert!(losses > 10 && losses < 100, "~25% loss, got {losses}/200");
        // And the network applies exactly that schedule.
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(1));
        let _b = net.register(SiteId(0));
        net.set_message_drops(99, 250);
        for i in 0..200 {
            net.send(SiteId(0), SiteId(1), Msg(i)).unwrap();
        }
        assert_eq!(net.stats().dropped() as usize, losses);
        let got: Vec<u32> = a.drain(500).iter().map(|e| e.payload.0).collect();
        let kept: Vec<u32> = (0..200u32).filter(|&i| !fate[i as usize]).collect();
        assert_eq!(got, kept, "survivors arrive, in order");
    }

    #[test]
    fn partition_blocks_one_direction_at_a_time() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let a = net.register(SiteId(0));
        let b = net.register(SiteId(1));
        net.block_link(SiteId(0), SiteId(1));
        net.send(SiteId(0), SiteId(1), Msg(1)).unwrap();
        net.send(SiteId(1), SiteId(0), Msg(2)).unwrap();
        assert!(b.try_recv().is_none(), "blocked direction drops");
        assert_eq!(a.try_recv().unwrap().payload, Msg(2), "reverse flows");
        assert_eq!(net.stats().dropped(), 1);
        net.heal_link(SiteId(0), SiteId(1));
        net.send(SiteId(0), SiteId(1), Msg(3)).unwrap();
        assert_eq!(b.try_recv().unwrap().payload, Msg(3), "healed");
    }

    #[test]
    fn killed_site_eats_traffic_until_reregistered() {
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        let _a = net.register(SiteId(0));
        let b = net.register(SiteId(1));
        net.deregister(SiteId(1));
        drop(b);
        // Dead host: sends succeed, messages vanish.
        net.send(SiteId(0), SiteId(1), Msg(1)).unwrap();
        assert_eq!(net.stats().dropped(), 1);
        // Never-registered host: still a wiring error.
        assert!(net.send(SiteId(0), SiteId(9), Msg(1)).is_err());
        // Restart: a fresh endpoint receives again.
        let b2 = net.register(SiteId(1));
        net.send(SiteId(0), SiteId(1), Msg(2)).unwrap();
        assert_eq!(b2.try_recv().unwrap().payload, Msg(2));
    }

    #[test]
    fn tracing_observes_sends_deliveries_and_drops() {
        let tracer = Arc::new(Tracer::new(2, 1024));
        let net: Network<Msg> = Network::new(LatencyModel::zero());
        net.set_tracer(Some(tracer.clone()));
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        net.send(SiteId(1), SiteId(0), Msg(7)).unwrap();
        net.block_link(SiteId(1), SiteId(0));
        net.send(SiteId(1), SiteId(0), Msg(8)).unwrap();
        assert_eq!(a.drain(10).len(), 1);
        let trace = tracer.collect();
        let count =
            |f: &dyn Fn(&EventKind) -> bool| trace.events.iter().filter(|e| f(&e.kind)).count();
        assert_eq!(count(&|k| matches!(k, EventKind::MsgSend { .. })), 2);
        assert_eq!(count(&|k| matches!(k, EventKind::MsgDeliver { .. })), 1);
        assert_eq!(count(&|k| matches!(k, EventKind::MsgDrop { .. })), 1);
        let report = dtx_trace::check::check(&trace);
        assert!(report.ok(), "{}", report.summary());
    }

    #[test]
    fn traced_delayed_run_delivers_identically_and_passes_fifo() {
        // Tracing only observes: a traced run of a seeded lossy link
        // delivers exactly what the untraced run delivers, and the
        // captured trace satisfies the per-link FIFO law.
        let model = LatencyModel {
            fixed: Duration::from_micros(300),
            per_kib: Duration::ZERO,
            jitter: Duration::from_micros(200),
            seed: 21,
        };
        let run = |tracer: Option<Arc<Tracer>>| -> (Vec<u32>, Option<dtx_trace::Trace>) {
            let net: Network<Msg> = Network::new(model);
            net.set_tracer(tracer.clone());
            let a = net.register(SiteId(0));
            let _b = net.register(SiteId(1));
            net.set_message_drops(5, 200);
            for i in 0..50 {
                net.send(SiteId(1), SiteId(0), Msg(i)).unwrap();
            }
            net.shutdown();
            let got = a.drain(100).iter().map(|e| e.payload.0).collect();
            (got, tracer.map(|t| t.collect()))
        };
        let (untraced, _) = run(None);
        let tracer = Arc::new(Tracer::new(2, 1024));
        let (traced, trace) = run(Some(tracer));
        assert_eq!(untraced, traced, "tracing perturbed delivery");
        let trace = trace.unwrap();
        let report = dtx_trace::check::check(&trace);
        assert!(report.ok(), "{}", report.summary());
        assert!(report.stats.links >= 1);
        // Every survivor has its deliver event; every loss its drop.
        let delivers = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MsgDeliver { .. }))
            .count();
        assert_eq!(delivers, traced.len());
    }

    #[test]
    fn link_delay_is_a_pure_function_of_seed_link_and_k() {
        let model = LatencyModel::lan(42);
        for k in 0..50 {
            let d1 = link_delay(&model, SiteId(1), SiteId(2), k, 128);
            let d2 = link_delay(&model, SiteId(1), SiteId(2), k, 128);
            assert_eq!(d1, d2, "same inputs, same delay (k={k})");
        }
        // Different links and different seeds draw different streams.
        let other_link = link_delay(&model, SiteId(2), SiteId(1), 0, 128);
        let other_seed = link_delay(&LatencyModel::lan(43), SiteId(1), SiteId(2), 0, 128);
        let base = link_delay(&model, SiteId(1), SiteId(2), 0, 128);
        assert!(base != other_link || base != other_seed);
    }
}
