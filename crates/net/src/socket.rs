//! Real socket transport: nonblocking TCP between DTX processes.
//!
//! The multi-process half of the transport seam. Inside one process,
//! [`crate::Network`] still routes messages between local sites (with the
//! simulated-LAN topologies as the deterministic test harness); a
//! [`SocketTransport`] carries traffic for sites hosted by *other OS
//! processes* over real TCP connections, speaking the framed wire format
//! of [`crate::wire`] (specified in `WIRE.md`).
//!
//! The wiring between the two is two closures:
//!
//! * the network's **uplink** ([`crate::Network::set_uplink`]) encodes an
//!   outbound envelope and queues it on the destination process's
//!   connection ([`SocketTransport::send_msg`]);
//! * the transport's **message handler**
//!   ([`SocketTransport::set_msg_handler`]) takes a decoded inbound
//!   envelope and delivers it to the local endpoint
//!   ([`crate::Network::deliver`]).
//!
//! ## Structure: one poller per shard
//!
//! Connections are pinned to a small fixed pool of **poller threads**
//! (default `min(4, cores)`, see [`SocketConfig`]) exactly like the timer
//! wheel pins links to delivery shards: thread count is O(pollers) no
//! matter how many processes peer, and one poller owns all of a
//! connection's reads so frame extraction needs no cross-thread
//! coordination. Pollers run the same poll-mode-nap discipline as the
//! wheel workers — drain everything movable, then nap briefly — instead
//! of parking per socket. Poller 0 additionally polls the (nonblocking)
//! listener for inbound connections; there is no separate acceptor
//! thread.
//!
//! ## Ordering
//!
//! All traffic for an ordered `(from, to)` site pair flows over one TCP
//! connection (a site's route is fixed by the first handshake that
//! advertises it), senders append complete frames under the connection's
//! write lock, and one poller extracts frames in stream order — so
//! per-pair FIFO holds across the process boundary exactly as it does in
//! the simulation (`tests/process.rs` storms this with the shapes of
//! `tests/net_props.rs`).
//!
//! ## Handshake
//!
//! Both ends of a fresh connection immediately send a `Hello` frame
//! listing the site ids they host; receipt installs `site → connection`
//! routes. An initiator that already knows the peer's sites (from the
//! driver's peer map) passes them to [`SocketTransport::connect`] so
//! routes exist before the reply arrives. Frames sent while a route is
//! still unknown are buffered (bounded) and flushed when the route
//! appears.

use crate::wire::{
    extract_frame, frame, FrameHeader, FrameKind, WireCodec, WireReader, WireWriter,
};
use crate::{Envelope, NetError, SiteId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Pseudo-site id used as the `from`/`to` of control frames exchanged
/// with a driver process (the driver hosts no scheduler; it speaks only
/// the control plane). Reserved: real sites are numbered from 0 and
/// clusters never reach 65535.
pub const DRIVER_SITE: SiteId = SiteId(u16::MAX);

/// Tuning knobs of the socket transport.
#[derive(Debug, Clone, Copy)]
pub struct SocketConfig {
    /// Poller-thread pool size — the upper bound on socket threads
    /// regardless of how many processes peer. Default: `min(4, cores)`,
    /// at least 1.
    pub pollers: usize,
    /// Nap between poll passes when nothing moved (the socket analogue
    /// of the wheel worker's poll nap). Default: 100 µs.
    pub nap: Duration,
}

impl Default for SocketConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SocketConfig {
            pollers: cores.clamp(1, 4),
            nap: Duration::from_micros(250),
        }
    }
}

/// Real bytes-on-wire counters (what `BENCH_wire.json` reports). Unlike
/// [`crate::NetStats`], which counts *approximate* payload sizes from
/// [`crate::Wire::wire_size`], these count the actual framed bytes
/// written to and read from sockets.
#[derive(Debug, Default)]
pub struct WireStats {
    frames_out: AtomicU64,
    frames_in: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
    decode_errors: AtomicU64,
    pending_dropped: AtomicU64,
}

impl WireStats {
    /// Frames queued for transmission.
    pub fn frames_out(&self) -> u64 {
        self.frames_out.load(Ordering::Relaxed)
    }

    /// Frames received and dispatched.
    pub fn frames_in(&self) -> u64 {
        self.frames_in.load(Ordering::Relaxed)
    }

    /// Bytes written to sockets (headers included — real wire bytes).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Bytes read from sockets.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Inbound `Msg` frames whose body failed to decode (dropped; the
    /// frame boundary stayed intact so the connection survives).
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// Frames dropped because their destination had no route and the
    /// pending buffer was full.
    pub fn pending_dropped(&self) -> u64 {
        self.pending_dropped.load(Ordering::Relaxed)
    }
}

/// Inbound scheduler-message sink (decoded `Msg` frames).
pub type MsgHandler<M> = Arc<dyn Fn(Envelope<M>) + Send + Sync>;

/// Inbound control-plane sink: the frame header plus the raw `Ctrl`
/// body. Handlers must not block — hand the body to a worker thread
/// (control bodies are decoded by `dtx-core`'s control codec; this crate
/// does not know their shape).
pub type CtrlHandler = Arc<dyn Fn(FrameHeader, Vec<u8>) + Send + Sync>;

/// Frames buffered per not-yet-routed site before drops start.
const PENDING_CAP: usize = 4096;

/// Write/read chunk size of one poller pass.
const IO_CHUNK: usize = 64 * 1024;

/// How long shutdown keeps flushing unsent bytes before giving up.
const FLUSH_BUDGET: Duration = Duration::from_millis(500);

/// One TCP connection. The write half (`out`) is shared with senders;
/// the read half (`inbuf`) is touched only by the owning poller.
struct Conn {
    id: u64,
    stream: TcpStream,
    /// Framed bytes awaiting transmission, appended under the lock in
    /// send order (per-pair FIFO rides on this plus TCP's own ordering).
    out: Mutex<Vec<u8>>,
    /// Received bytes awaiting frame extraction.
    inbuf: Mutex<Vec<u8>>,
    closed: AtomicBool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> std::io::Result<Arc<Conn>> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Arc::new(Conn {
            id,
            stream,
            out: Mutex::new(Vec::new()),
            inbuf: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
        }))
    }
}

struct SockInner<M> {
    /// Site ids hosted by this process (advertised in `Hello`).
    hosted: Vec<SiteId>,
    listener: TcpListener,
    local_addr: SocketAddr,
    cfg: SocketConfig,
    /// site → connection id, installed by handshakes and
    /// [`SocketTransport::connect`]'s expectation list. First writer
    /// wins, so a simultaneous cross-connect cannot flap a route
    /// mid-stream.
    routes: RwLock<HashMap<SiteId, u64>>,
    conns: RwLock<HashMap<u64, Arc<Conn>>>,
    /// Connections grouped by owning poller shard.
    shards: Vec<Mutex<Vec<Arc<Conn>>>>,
    /// Frames for sites with no route yet (bounded by [`PENDING_CAP`]).
    pending: Mutex<HashMap<SiteId, Vec<Vec<u8>>>>,
    next_conn: AtomicU64,
    stats: WireStats,
    msg_handler: RwLock<Option<MsgHandler<M>>>,
    ctrl_handler: RwLock<Option<CtrlHandler>>,
    stop: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A cloneable handle to this process's socket transport (all clones
/// share state).
pub struct SocketTransport<M: WireCodec + Send + 'static> {
    inner: Arc<SockInner<M>>,
}

impl<M: WireCodec + Send + 'static> Clone for SocketTransport<M> {
    fn clone(&self) -> Self {
        SocketTransport {
            inner: self.inner.clone(),
        }
    }
}

impl<M: WireCodec + Send + 'static> SocketTransport<M> {
    /// Binds `addr` (use port 0 for an OS-assigned port; see
    /// [`SocketTransport::local_addr`]) and starts the poller pool. The
    /// transport accepts inbound connections immediately; install
    /// handlers before peers start talking.
    pub fn bind(hosted: &[SiteId], addr: &str, cfg: SocketConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let pollers = cfg.pollers.max(1);
        let inner = Arc::new(SockInner {
            hosted: hosted.to_vec(),
            listener,
            local_addr,
            cfg: SocketConfig { pollers, ..cfg },
            routes: RwLock::new(HashMap::new()),
            conns: RwLock::new(HashMap::new()),
            shards: (0..pollers).map(|_| Mutex::new(Vec::new())).collect(),
            pending: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            stats: WireStats::default(),
            msg_handler: RwLock::new(None),
            ctrl_handler: RwLock::new(None),
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        for shard in 0..pollers {
            let inner2 = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("dtx-sock-poll-{shard}"))
                .spawn(move || poll_loop(inner2, shard))
                .expect("spawn socket poller");
            inner.threads.lock().push(handle);
        }
        Ok(SocketTransport { inner })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// The site ids this process hosts.
    pub fn hosted(&self) -> &[SiteId] {
        &self.inner.hosted
    }

    /// Real bytes-on-wire counters.
    pub fn stats(&self) -> &WireStats {
        &self.inner.stats
    }

    /// Installs the inbound scheduler-message sink (usually a closure
    /// over [`crate::Network::deliver`]).
    pub fn set_msg_handler(&self, handler: Option<MsgHandler<M>>) {
        *self.inner.msg_handler.write() = handler;
    }

    /// Installs the inbound control-plane sink.
    pub fn set_ctrl_handler(&self, handler: Option<CtrlHandler>) {
        *self.inner.ctrl_handler.write() = handler;
    }

    /// Connects to a peer process and sends the handshake. `expect`
    /// lists the sites known (from the peer map) to live there — their
    /// routes are installed immediately so traffic can flow before the
    /// peer's own `Hello` arrives; the empty list works too (routes then
    /// wait on the handshake).
    pub fn connect(&self, addr: &str, expect: &[SiteId]) -> std::io::Result<()> {
        let stream = TcpStream::connect(addr)?;
        let id = self.inner.next_conn.fetch_add(1, Ordering::Relaxed);
        let conn = Conn::new(id, stream)?;
        queue_hello(&self.inner, &conn);
        register_conn(&self.inner, conn);
        let mut routes = self.inner.routes.write();
        for &site in expect {
            routes.entry(site).or_insert(id);
        }
        drop(routes);
        for &site in expect {
            flush_pending(&self.inner, site);
        }
        Ok(())
    }

    /// Encodes `payload` and queues it for the process hosting `to`.
    /// Unknown destinations are buffered (bounded) until a route
    /// appears — process startup is a race between the peer map and the
    /// first send.
    pub fn send_msg(&self, from: SiteId, to: SiteId, payload: &M) -> Result<(), NetError> {
        let framed = frame(FrameKind::Msg, from, to, &payload.encode());
        route_frame(&self.inner, to, framed)
    }

    /// Queues a control-plane frame (body already encoded by the caller)
    /// for the process hosting `to`.
    pub fn send_ctrl(&self, from: SiteId, to: SiteId, body: &[u8]) -> Result<(), NetError> {
        let framed = frame(FrameKind::Ctrl, from, to, body);
        route_frame(&self.inner, to, framed)
    }

    /// True when a route to `site` exists (its hosting process has
    /// handshaken or been connected with an expectation list).
    pub fn has_route(&self, site: SiteId) -> bool {
        self.inner.routes.read().contains_key(&site)
    }

    /// Stops the pollers after a bounded best-effort flush of unsent
    /// frames, then closes every connection. Clears the handlers (they
    /// typically close over the local `Network`, which closes over this
    /// transport via the uplink — clearing breaks the reference cycle).
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        let threads = std::mem::take(&mut *self.inner.threads.lock());
        for h in threads {
            let _ = h.join();
        }
        for conn in self.inner.conns.read().values() {
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        *self.inner.msg_handler.write() = None;
        *self.inner.ctrl_handler.write() = None;
    }
}

/// Encodes this process's `Hello` (hosted-site list) onto `conn`'s
/// outbound buffer. `from` is the lowest hosted site (or [`DRIVER_SITE`]
/// for a pure driver); `to` is unknown at handshake time and carries the
/// same value.
fn queue_hello<M>(inner: &SockInner<M>, conn: &Conn) {
    let mut w = WireWriter::new();
    w.put_varint(inner.hosted.len() as u64);
    for site in &inner.hosted {
        w.put_varint(site.0 as u64);
    }
    let me = inner.hosted.first().copied().unwrap_or(DRIVER_SITE);
    let framed = frame(FrameKind::Hello, me, me, &w.finish());
    push_frame(inner, conn, framed);
}

/// Appends one framed message to `conn`'s outbound buffer, counting it.
fn push_frame<M>(inner: &SockInner<M>, conn: &Conn, framed: Vec<u8>) {
    inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
    inner
        .stats
        .bytes_out
        .fetch_add(framed.len() as u64, Ordering::Relaxed);
    conn.out.lock().extend_from_slice(&framed);
}

/// Adds a fresh connection to the conn table and its poller shard.
fn register_conn<M>(inner: &SockInner<M>, conn: Arc<Conn>) {
    let shard = (conn.id as usize) % inner.shards.len();
    inner.conns.write().insert(conn.id, Arc::clone(&conn));
    inner.shards[shard].lock().push(conn);
}

/// Queues `framed` on the connection routing `to`, or into the bounded
/// pending buffer when no route exists yet.
fn route_frame<M>(inner: &SockInner<M>, to: SiteId, framed: Vec<u8>) -> Result<(), NetError> {
    let conn = {
        let routes = inner.routes.read();
        routes
            .get(&to)
            .and_then(|id| inner.conns.read().get(id).cloned())
    };
    match conn {
        Some(conn) => {
            push_frame(inner, &conn, framed);
            Ok(())
        }
        None => {
            {
                let mut pending = inner.pending.lock();
                let q = pending.entry(to).or_default();
                if q.len() >= PENDING_CAP {
                    inner.stats.pending_dropped.fetch_add(1, Ordering::Relaxed);
                } else {
                    q.push(framed);
                }
            }
            // A handshake may have installed the route between the check
            // above and the buffering — re-check so the frame cannot be
            // stranded in a pending queue nobody will flush again.
            if inner.routes.read().contains_key(&to) {
                flush_pending(inner, to);
            }
            Ok(())
        }
    }
}

/// Moves any frames buffered for `site` onto its (now routed)
/// connection, preserving their buffering order.
fn flush_pending<M>(inner: &SockInner<M>, site: SiteId) {
    let frames = match inner.pending.lock().remove(&site) {
        Some(f) => f,
        None => return,
    };
    let conn = {
        let routes = inner.routes.read();
        routes
            .get(&site)
            .and_then(|id| inner.conns.read().get(id).cloned())
    };
    if let Some(conn) = conn {
        let mut out = conn.out.lock();
        for framed in frames {
            inner.stats.frames_out.fetch_add(1, Ordering::Relaxed);
            inner
                .stats
                .bytes_out
                .fetch_add(framed.len() as u64, Ordering::Relaxed);
            out.extend_from_slice(&framed);
        }
    }
    // No route after all (race with a failed connect): drop, counted.
    else {
        inner
            .stats
            .pending_dropped
            .fetch_add(frames.len() as u64, Ordering::Relaxed);
    }
}

/// One poller thread: drains its shard's connections (write, read,
/// extract, dispatch) in poll-mode passes with naps, mirroring the
/// reactor's wheel workers. Shard 0 also accepts inbound connections.
fn poll_loop<M: WireCodec + Send + 'static>(inner: Arc<SockInner<M>>, shard: usize) {
    loop {
        let stopping = inner.stop.load(Ordering::Relaxed);
        let mut moved = false;
        if shard == 0 && !stopping {
            moved |= accept_pass(&inner);
        }
        let conns: Vec<Arc<Conn>> = inner.shards[shard].lock().clone();
        for conn in &conns {
            if conn.closed.load(Ordering::Relaxed) {
                continue;
            }
            moved |= write_pass(conn);
            moved |= read_pass(&inner, conn);
            extract_pass(&inner, conn);
        }
        if stopping {
            // Bounded best-effort flush of whatever is still queued, then
            // exit; unsendable bytes are abandoned when the budget runs
            // out (the peer is likely gone).
            let deadline = Instant::now() + FLUSH_BUDGET;
            while Instant::now() < deadline {
                let mut left = false;
                for conn in &conns {
                    if conn.closed.load(Ordering::Relaxed) {
                        continue;
                    }
                    write_pass(conn);
                    left |= !conn.out.lock().is_empty();
                }
                if !left {
                    break;
                }
                std::thread::sleep(inner.cfg.nap);
            }
            return;
        }
        if !moved {
            std::thread::sleep(inner.cfg.nap);
        }
    }
}

/// Accepts every pending inbound connection (nonblocking listener).
fn accept_pass<M>(inner: &Arc<SockInner<M>>) -> bool {
    let mut any = false;
    loop {
        match inner.listener.accept() {
            Ok((stream, _)) => {
                let id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(conn) = Conn::new(id, stream) {
                    queue_hello(inner, &conn);
                    register_conn(inner, conn);
                    any = true;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return any,
            Err(_) => return any,
        }
    }
}

/// Writes as much of `conn`'s outbound buffer as the socket accepts.
fn write_pass(conn: &Conn) -> bool {
    let mut out = conn.out.lock();
    if out.is_empty() {
        return false;
    }
    let mut written = 0usize;
    while written < out.len() {
        let end = (written + IO_CHUNK).min(out.len());
        match (&conn.stream).write(&out[written..end]) {
            Ok(0) => {
                conn.closed.store(true, Ordering::Relaxed);
                break;
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closed.store(true, Ordering::Relaxed);
                break;
            }
        }
    }
    out.drain(..written);
    written > 0
}

/// Reads everything currently available on `conn` into its inbuf.
fn read_pass<M>(inner: &SockInner<M>, conn: &Conn) -> bool {
    let mut tmp = [0u8; IO_CHUNK];
    let mut any = false;
    loop {
        match (&conn.stream).read(&mut tmp) {
            Ok(0) => {
                conn.closed.store(true, Ordering::Relaxed);
                return any;
            }
            Ok(n) => {
                inner.stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                conn.inbuf.lock().extend_from_slice(&tmp[..n]);
                any = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return any,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closed.store(true, Ordering::Relaxed);
                return any;
            }
        }
    }
}

/// Extracts and dispatches every complete frame buffered on `conn`. A
/// header-level error (bad magic/version/length) desynchronizes the
/// stream irrecoverably, so the connection is closed; a body-level
/// decode failure only drops that frame.
fn extract_pass<M: WireCodec + Send + 'static>(inner: &Arc<SockInner<M>>, conn: &Conn) {
    let mut inbuf = conn.inbuf.lock();
    let mut consumed = 0usize;
    loop {
        match extract_frame(&inbuf[consumed..]) {
            Ok(Some((header, body))) => {
                let total = crate::wire::HEADER_LEN + header.body_len;
                dispatch(inner, conn, header, body);
                consumed += total;
            }
            Ok(None) => break,
            Err(_) => {
                conn.closed.store(true, Ordering::Relaxed);
                inbuf.clear();
                return;
            }
        }
    }
    inbuf.drain(..consumed);
}

/// Routes one received frame to its sink.
fn dispatch<M: WireCodec + Send + 'static>(
    inner: &Arc<SockInner<M>>,
    conn: &Conn,
    header: FrameHeader,
    body: &[u8],
) {
    inner.stats.frames_in.fetch_add(1, Ordering::Relaxed);
    match header.kind {
        FrameKind::Hello => {
            let mut r = WireReader::new(body);
            let Ok(count) = r.varint() else {
                conn.closed.store(true, Ordering::Relaxed);
                return;
            };
            let mut sites = Vec::new();
            for _ in 0..count.min(u16::MAX as u64) {
                match r.varint() {
                    Ok(s) if s <= u16::MAX as u64 => sites.push(SiteId(s as u16)),
                    _ => {
                        conn.closed.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            }
            let mut routes = inner.routes.write();
            for &site in &sites {
                routes.entry(site).or_insert(conn.id);
            }
            drop(routes);
            for &site in &sites {
                flush_pending(inner, site);
            }
        }
        FrameKind::Msg => match M::decode(body) {
            Ok(payload) => {
                let handler = inner.msg_handler.read().clone();
                if let Some(h) = handler {
                    h(Envelope {
                        from: header.from,
                        to: header.to,
                        payload,
                    });
                }
            }
            Err(_) => {
                inner.stats.decode_errors.fetch_add(1, Ordering::Relaxed);
            }
        },
        FrameKind::Ctrl => {
            let handler = inner.ctrl_handler.read().clone();
            if let Some(h) = handler {
                h(header, body.to_vec());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireError;
    use crossbeam::channel::unbounded;

    /// A tiny codec-bearing payload for transport-level tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Ping(u64);

    impl WireCodec for Ping {
        fn encode_body(&self, w: &mut WireWriter) {
            w.put_varint(self.0);
        }
        fn decode_body(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            Ok(Ping(r.varint()?))
        }
    }

    fn pair() -> (SocketTransport<Ping>, SocketTransport<Ping>) {
        let a = SocketTransport::bind(&[SiteId(0)], "127.0.0.1:0", SocketConfig::default())
            .expect("bind a");
        let b = SocketTransport::bind(&[SiteId(1)], "127.0.0.1:0", SocketConfig::default())
            .expect("bind b");
        a.connect(&b.local_addr().to_string(), &[SiteId(1)])
            .expect("connect");
        (a, b)
    }

    #[test]
    fn messages_cross_the_socket_in_order() {
        let (a, b) = pair();
        let (tx, rx) = unbounded();
        b.set_msg_handler(Some(Arc::new(move |env: Envelope<Ping>| {
            let _ = tx.send(env);
        })));
        const N: u64 = 500;
        for i in 0..N {
            a.send_msg(SiteId(0), SiteId(1), &Ping(i)).unwrap();
        }
        for i in 0..N {
            let env = rx
                .recv_timeout(Duration::from_secs(5))
                .expect("delivery within timeout");
            assert_eq!(env.from, SiteId(0));
            assert_eq!(env.to, SiteId(1));
            assert_eq!(env.payload, Ping(i), "per-pair FIFO across the socket");
        }
        assert!(a.stats().bytes_out() >= N * (crate::wire::HEADER_LEN as u64));
        assert!(b.stats().frames_in() >= N);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn reverse_route_is_learned_from_the_handshake() {
        let (a, b) = pair();
        let (tx, rx) = unbounded();
        a.set_msg_handler(Some(Arc::new(move |env: Envelope<Ping>| {
            let _ = tx.send(env.payload);
        })));
        // b never called connect — its route to site 0 comes from a's
        // Hello. Sends may land in the pending buffer until then.
        b.send_msg(SiteId(1), SiteId(0), &Ping(77)).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).expect("delivered"),
            Ping(77)
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn ctrl_frames_reach_the_ctrl_handler() {
        let (a, b) = pair();
        let (tx, rx) = unbounded();
        b.set_ctrl_handler(Some(Arc::new(move |header: FrameHeader, body: Vec<u8>| {
            let _ = tx.send((header.from, body));
        })));
        a.send_ctrl(DRIVER_SITE, SiteId(1), b"control body")
            .unwrap();
        let (from, body) = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        assert_eq!(from, DRIVER_SITE);
        assert_eq!(body, b"control body");
        a.shutdown();
        b.shutdown();
    }
}
