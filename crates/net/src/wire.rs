//! Binary wire framing: varints, bounds-checked readers, and the frame
//! header every DTX process boundary speaks.
//!
//! This module is the *generic* half of the wire format — the primitives
//! and the frame envelope. The `Message`-specific tag table and
//! per-variant codecs live in `dtx-core::wire` (the dependency points
//! that way: core depends on net). The normative specification of both
//! halves is `WIRE.md` at the repository root; a unit test over there
//! walks the spec's tag table against the codec so the document cannot
//! drift from the code.
//!
//! Design rules (see `WIRE.md` §2):
//!
//! * **Length-prefixed frames.** Every frame is a fixed 12-byte header
//!   (magic, version, kind, from, to, body length) followed by exactly
//!   `body length` body bytes. A reader never needs to understand a body
//!   to skip it — that is what makes version negotiation and partial
//!   reads tractable on a nonblocking socket.
//! * **LEB128 varints** for counts and integers inside bodies: most ids
//!   and lengths are tiny, and a varint never costs more than 10 bytes
//!   for a `u64`.
//! * **Decode never panics.** Every read is bounds-checked and returns
//!   [`WireError`]; corrupt or truncated input is an error value, which
//!   the fuzz tests in `dtx-core` pin (random truncations and bit flips
//!   must error, never panic).

use crate::SiteId;
use std::fmt;

/// First two bytes of every frame: `0xD7 'X'` ("DTX"). A connection that
/// opens with anything else is not speaking DTX and is dropped
/// immediately instead of being parsed into garbage.
pub const MAGIC: [u8; 2] = [0xD7, 0x58];

/// Wire-format version this build speaks (header byte 2). Decoders
/// refuse other versions — see `WIRE.md` §6 for the compat policy
/// (additive variants bump nothing; layout changes bump this byte).
pub const WIRE_VERSION: u8 = 1;

/// Fixed frame-header length in bytes (see `WIRE.md` §2: magic ×2,
/// version, kind, from ×2, to ×2, body length ×4).
pub const HEADER_LEN: usize = 12;

/// Upper bound on a frame body. Far above any legitimate message
/// (documents stream in chunks well below this), so a length field this
/// large means corruption — fail fast instead of allocating gigabytes.
pub const MAX_BODY_LEN: usize = 64 << 20;

/// What a frame carries (header byte 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Connection handshake: the sender advertises the sites it hosts.
    Hello,
    /// A scheduler-to-scheduler `Message` (routed by `from`/`to`).
    Msg,
    /// Control-plane traffic (catalog registration, document loads,
    /// transaction submission, stats, gossip, shutdown).
    Ctrl,
}

impl FrameKind {
    fn from_byte(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(FrameKind::Hello),
            1 => Ok(FrameKind::Msg),
            2 => Ok(FrameKind::Ctrl),
            _ => Err(WireError::BadKind(b)),
        }
    }

    fn byte(self) -> u8 {
        match self {
            FrameKind::Hello => 0,
            FrameKind::Msg => 1,
            FrameKind::Ctrl => 2,
        }
    }
}

/// Decode failure. Truncation and corruption are ordinary error values —
/// nothing in this module panics on input bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before the value did.
    Truncated,
    /// Frame did not start with [`MAGIC`].
    BadMagic([u8; 2]),
    /// Frame carried a wire-format version this build does not speak.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Unknown enum tag while decoding a body.
    BadTag {
        /// Which enum the tag belongs to (static name, e.g. `"Message"`).
        what: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A varint ran past 10 bytes (not a valid `u64`).
    VarintOverflow,
    /// A declared length exceeds [`MAX_BODY_LEN`] or the remaining input.
    BadLength(u64),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A field failed semantic validation (e.g. an unparsable query).
    Malformed(&'static str),
    /// Decoding finished with this many input bytes left over.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadMagic(m) => write!(f, "bad magic {:02x}{:02x}", m[0], m[1]),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::BadLength(n) => write!(f, "declared length {n} out of range"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::Malformed(what) => write!(f, "malformed field: {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder over a byte buffer. Infallible — encoding is
/// total; only decoding can fail.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// LEB128 unsigned varint (1–10 bytes; 7 value bits per byte,
    /// continuation in the high bit — see `WIRE.md` §3).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Raw bytes, *without* a length prefix (caller frames them).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed bytes: varint count, then the bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string (same layout as [`WireWriter::put_bytes`]).
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice. Every method returns
/// [`WireError`] on truncation or corruption; none panic.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors with [`WireError::TrailingBytes`] unless the input is
    /// fully consumed — a decoded value must account for every byte of
    /// its frame, or the stream is desynchronized.
    pub fn expect_end(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }

    /// One raw byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// A bool byte; anything other than 0/1 is corruption.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool byte not 0/1")),
        }
    }

    /// LEB128 unsigned varint (reject > 10 bytes).
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let byte = self.u8()?;
            let bits = (byte & 0x7F) as u64;
            // The 10th byte may only carry the u64's top single bit.
            if i == 9 && byte > 0x01 {
                return Err(WireError::VarintOverflow);
            }
            v |= bits << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::VarintOverflow)
    }

    /// A varint validated to fit `usize` and to not exceed the remaining
    /// input — the guard every length prefix goes through, so a flipped
    /// length bit cannot trigger a huge allocation.
    pub fn len_prefix(&mut self) -> Result<usize, WireError> {
        let n = self.varint()?;
        if n > MAX_BODY_LEN as u64 || n > self.remaining() as u64 {
            return Err(WireError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.len_prefix()?;
        self.raw(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let raw = self.bytes()?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| WireError::BadUtf8)
    }
}

/// A type with a binary body encoding. `encode`/`decode` wrap the body
/// methods with the whole-buffer contract (decode must consume every
/// byte). Frame headers are separate — see [`frame`] / [`extract_frame`].
pub trait WireCodec: Sized {
    /// Appends this value's body bytes to `w`.
    fn encode_body(&self, w: &mut WireWriter);

    /// Decodes one value from `r`, leaving `r` positioned after it.
    fn decode_body(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes to a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode_body(&mut w);
        w.finish()
    }

    /// Decodes from a complete buffer; trailing bytes are an error.
    fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode_body(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

/// A decoded frame header (see `WIRE.md` §2 for the byte layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the body is.
    pub kind: FrameKind,
    /// Originating site (or the driver pseudo-site for control frames).
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Body length in bytes.
    pub body_len: usize,
}

/// Appends a complete frame (header + body) to `out`. The socket write
/// path uses this to batch several frames into one buffer before a
/// single `write` call.
pub fn frame_into(out: &mut Vec<u8>, kind: FrameKind, from: SiteId, to: SiteId, body: &[u8]) {
    debug_assert!(body.len() <= MAX_BODY_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind.byte());
    out.extend_from_slice(&from.0.to_be_bytes());
    out.extend_from_slice(&to.0.to_be_bytes());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body);
}

/// Encodes one complete frame into a fresh buffer.
pub fn frame(kind: FrameKind, from: SiteId, to: SiteId, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    frame_into(&mut out, kind, from, to, body);
    out
}

/// Parses a frame header from the front of `buf`. Returns `Ok(None)`
/// when fewer than [`HEADER_LEN`] bytes are available (read more), an
/// error on bad magic/version/kind/length (drop the connection — the
/// stream cannot be resynchronized).
pub fn decode_header(buf: &[u8]) -> Result<Option<FrameHeader>, WireError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    if buf[0..2] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1]]));
    }
    if buf[2] != WIRE_VERSION {
        return Err(WireError::BadVersion(buf[2]));
    }
    let kind = FrameKind::from_byte(buf[3])?;
    let from = SiteId(u16::from_be_bytes([buf[4], buf[5]]));
    let to = SiteId(u16::from_be_bytes([buf[6], buf[7]]));
    let body_len = u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
    if body_len > MAX_BODY_LEN {
        return Err(WireError::BadLength(body_len as u64));
    }
    Ok(Some(FrameHeader {
        kind,
        from,
        to,
        body_len,
    }))
}

/// Extracts one complete frame from the front of `buf`: the header, the
/// body slice, and the total byte count to consume. `Ok(None)` means the
/// buffer holds only a partial frame — keep the bytes and read more
/// (the socket read path calls this in a loop over its receive buffer).
pub fn extract_frame(buf: &[u8]) -> Result<Option<(FrameHeader, &[u8])>, WireError> {
    let Some(header) = decode_header(buf)? else {
        return Ok(None);
    };
    let total = HEADER_LEN + header.body_len;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((header, &buf[HEADER_LEN..total])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &cases {
            let mut w = WireWriter::new();
            w.put_varint(v);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.varint().unwrap(), v, "round trip of {v}");
            assert_eq!(r.remaining(), 0);
        }
        // Encoded sizes match LEB128 expectations.
        for (v, len) in [(0u64, 1usize), (127, 1), (128, 2), (16384, 3)] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            assert_eq!(w.finish().len(), len, "size of {v}");
        }
    }

    #[test]
    fn varint_rejects_overlong_and_truncated() {
        // 11 continuation bytes: more than any u64 needs.
        let overlong = [0x80u8; 11];
        assert_eq!(
            WireReader::new(&overlong).varint(),
            Err(WireError::VarintOverflow)
        );
        // 10th byte with more than the top bit set overflows u64.
        let mut too_big = [0x80u8; 10];
        too_big[9] = 0x02;
        assert_eq!(
            WireReader::new(&too_big).varint(),
            Err(WireError::VarintOverflow)
        );
        // Continuation bit set but input ends.
        let truncated = [0x80u8];
        assert_eq!(
            WireReader::new(&truncated).varint(),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut w = WireWriter::new();
        w.put_str("");
        w.put_str("héllo — DTX");
        w.put_bytes(&[1, 2, 3]);
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.str().unwrap(), "");
        assert_eq!(r.str().unwrap(), "héllo — DTX");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn bad_utf8_and_bad_bool_error() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.finish();
        assert_eq!(WireReader::new(&bytes).str(), Err(WireError::BadUtf8));
        assert_eq!(
            WireReader::new(&[7u8]).bool(),
            Err(WireError::Malformed("bool byte not 0/1"))
        );
    }

    #[test]
    fn length_prefix_guards_against_huge_declared_lengths() {
        // A length claiming more than the remaining input must error
        // without allocating.
        let mut w = WireWriter::new();
        w.put_varint(1 << 30);
        let bytes = w.finish();
        assert!(matches!(
            WireReader::new(&bytes).len_prefix(),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn frame_round_trips() {
        let body = b"payload bytes";
        let f = frame(FrameKind::Msg, SiteId(3), SiteId(7), body);
        assert_eq!(f.len(), HEADER_LEN + body.len());
        let (header, got) = extract_frame(&f).unwrap().expect("complete");
        assert_eq!(
            header,
            FrameHeader {
                kind: FrameKind::Msg,
                from: SiteId(3),
                to: SiteId(7),
                body_len: body.len(),
            }
        );
        assert_eq!(got, body);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let f = frame(FrameKind::Ctrl, SiteId(0), SiteId(1), &[9; 40]);
        for cut in 0..f.len() {
            assert_eq!(
                extract_frame(&f[..cut]).unwrap(),
                None,
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
        assert!(extract_frame(&f).unwrap().is_some());
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let good = frame(FrameKind::Hello, SiteId(1), SiteId(2), &[]);
        let mut bad_magic = good.clone();
        bad_magic[0] = 0x00;
        assert!(matches!(
            decode_header(&bad_magic),
            Err(WireError::BadMagic(_))
        ));
        let mut bad_version = good.clone();
        bad_version[2] = 99;
        assert_eq!(decode_header(&bad_version), Err(WireError::BadVersion(99)));
        let mut bad_kind = good.clone();
        bad_kind[3] = 42;
        assert_eq!(decode_header(&bad_kind), Err(WireError::BadKind(42)));
        let mut bad_len = good.clone();
        bad_len[8..12].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            decode_header(&bad_len),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_an_error_for_whole_buffer_decode() {
        struct Two(u8, u8);
        impl WireCodec for Two {
            fn encode_body(&self, w: &mut WireWriter) {
                w.put_u8(self.0);
                w.put_u8(self.1);
            }
            fn decode_body(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(Two(r.u8()?, r.u8()?))
            }
        }
        let bytes = Two(1, 2).encode();
        assert_eq!(bytes, vec![1, 2]);
        let with_junk = [1u8, 2, 3];
        assert_eq!(
            Two::decode(&with_junk).err(),
            Some(WireError::TrailingBytes(1))
        );
        assert!(Two::decode(&bytes).is_ok());
    }
}
