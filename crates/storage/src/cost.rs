//! Deterministic I/O cost model for the simulated store.
//!
//! The paper ran against Sedna on a disk-backed DBMS; our [`MemStore`](crate::MemStore)
//! replaces it (see DESIGN.md). To preserve the *relative* cost structure
//! — loads and persists are much slower than in-memory tree operations,
//! and scale with document size — the store charges wall-clock time per
//! operation according to this model. Tests use [`CostModel::zero`];
//! experiments use [`CostModel::default`], loosely calibrated to a local
//! DBMS on 2009-era hardware scaled down to keep experiment wall time
//! reasonable.

use std::time::Duration;

/// Linear cost model: `base + per_kib * size_in_kib` per operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed cost per storage operation.
    pub base: Duration,
    /// Additional cost per KiB transferred.
    pub per_kib: Duration,
}

impl Default for CostModel {
    /// Default calibration: 200 µs per operation + 20 µs/KiB (~50 MB/s
    /// effective sequential rate — a deliberate scale-down of a 2009 disk
    /// so that full experiment sweeps finish in seconds, preserving the
    /// storage-vs-CPU cost ratio rather than absolute numbers).
    fn default() -> Self {
        CostModel {
            base: Duration::from_micros(200),
            per_kib: Duration::from_micros(20),
        }
    }
}

impl CostModel {
    /// A model that charges nothing (unit tests).
    pub fn zero() -> Self {
        CostModel {
            base: Duration::ZERO,
            per_kib: Duration::ZERO,
        }
    }

    /// The charge for an operation moving `bytes` bytes.
    pub fn charge(&self, bytes: usize) -> Duration {
        self.base + self.per_kib * ((bytes / 1024) as u32)
    }

    /// Sleeps for the charge (no-op under the zero model).
    pub fn pay(&self, bytes: usize) {
        let d = self.charge(bytes);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.charge(0), Duration::ZERO);
        assert_eq!(m.charge(1 << 20), Duration::ZERO);
    }

    #[test]
    fn charge_scales_with_size() {
        let m = CostModel {
            base: Duration::from_micros(100),
            per_kib: Duration::from_micros(10),
        };
        assert_eq!(m.charge(0), Duration::from_micros(100));
        assert_eq!(m.charge(1024), Duration::from_micros(110));
        assert_eq!(m.charge(10 * 1024), Duration::from_micros(200));
    }

    #[test]
    fn default_is_nonzero() {
        let m = CostModel::default();
        assert!(m.charge(4096) > Duration::ZERO);
    }
}
