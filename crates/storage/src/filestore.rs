//! File-system storage backend: one `.xml` file per document.
//!
//! This is the "XML data persisted in a file system" variant from the
//! paper's Fig. 2 deployment example. It is functional (used by the
//! `filesystem_site` example and its tests) but the experiments use
//! [`crate::MemStore`] for determinism.

use crate::{DataManager, StorageError, StorageResult, StoreStats};
use dtx_xml::Document;
use std::fs;
use std::path::{Path, PathBuf};

/// A directory-backed document store.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    stats: StoreStats,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> StorageResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(FileStore {
            dir,
            stats: StoreStats::default(),
        })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Sanitize: document names become file names.
        let safe: String = name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.dir.join(format!("{safe}.xml"))
    }
}

impl DataManager for FileStore {
    fn backend(&self) -> &'static str {
        "filestore"
    }

    fn list(&self) -> Vec<String> {
        let mut out: Vec<String> = fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter_map(|e| {
                        let p = e.path();
                        if p.extension().and_then(|x| x.to_str()) == Some("xml") {
                            p.file_stem().and_then(|s| s.to_str()).map(str::to_owned)
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .unwrap_or_default();
        out.sort();
        out
    }

    fn contains(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn put_raw(&mut self, name: &str, xml: &str) -> StorageResult<()> {
        Document::parse(xml).map_err(|cause| StorageError::Corrupt {
            name: name.to_owned(),
            cause,
        })?;
        fs::write(self.path_of(name), xml)?;
        Ok(())
    }

    fn load(&mut self, name: &str) -> StorageResult<Document> {
        let path = self.path_of(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_owned()));
        }
        let xml = fs::read_to_string(path)?;
        self.stats.loads += 1;
        self.stats.bytes_read += xml.len() as u64;
        Document::parse(&xml).map_err(|cause| StorageError::Corrupt {
            name: name.to_owned(),
            cause,
        })
    }

    fn persist(&mut self, name: &str, doc: &Document) -> StorageResult<()> {
        let xml = doc.to_xml();
        self.stats.persists += 1;
        self.stats.bytes_written += xml.len() as u64;
        // Write-then-rename for crash atomicity of individual persists.
        let tmp = self.path_of(name).with_extension("xml.tmp");
        fs::write(&tmp, &xml)?;
        fs::rename(&tmp, self.path_of(name))?;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> StorageResult<()> {
        let path = self.path_of(name);
        if !path.exists() {
            return Err(StorageError::NotFound(name.to_owned()));
        }
        fs::remove_file(path)?;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dtx-filestore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trip_on_disk() {
        let dir = tmpdir("rt");
        let mut s = FileStore::open(&dir).unwrap();
        s.put_raw("d1", "<products><product><id>4</id></product></products>")
            .unwrap();
        assert!(s.contains("d1"));
        assert_eq!(s.list(), vec!["d1".to_owned()]);
        let doc = s.load("d1").unwrap();
        s.persist("d1", &doc).unwrap();
        let again = s.load("d1").unwrap();
        assert_eq!(again.to_xml(), doc.to_xml());
        s.remove("d1").unwrap();
        assert!(!s.contains("d1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_are_sanitized() {
        let dir = tmpdir("san");
        let mut s = FileStore::open(&dir).unwrap();
        s.put_raw("weird/../name", "<r/>").unwrap();
        // The file lives inside the store dir, not outside it.
        assert_eq!(s.list().len(), 1);
        assert!(s.contains("weird/../name"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_corrupt() {
        let dir = tmpdir("err");
        let mut s = FileStore::open(&dir).unwrap();
        assert!(matches!(s.load("ghost"), Err(StorageError::NotFound(_))));
        assert!(matches!(
            s.put_raw("bad", "<a>"),
            Err(StorageError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
