//! # dtx-storage — the XML storage substrate
//!
//! The paper decouples DTX from storage: "The storage structures of these
//! documents are independent, that is, DTX supports communication with any
//! XML document storage method" (§2), and the DataManager component
//! "is responsible for recovering XML data from the storage structure,
//! converting it into a proper representation structure, and providing
//! means for updating the data in the storage structure" (§2.1).
//!
//! This crate supplies that boundary:
//!
//! * [`DataManager`] — the storage trait DTX instances talk to;
//! * [`MemStore`] — a Sedna-stand-in: an in-memory XML store with a
//!   deterministic [`CostModel`] charging per-operation and per-byte I/O
//!   time, so experiments retain the relative cost of loads/persists that
//!   the paper's Sedna deployment had (DESIGN.md documents this
//!   substitution);
//! * [`FileStore`] — a real file-system backend (one `.xml` file per
//!   document), matching the paper's example where "the DTX module on the
//!   site s2 manages XML data persisted in a file system" (Fig. 2);
//! * [`StoreStats`] — load/persist counters and byte totals used by the
//!   experiment reports.

pub mod cost;
pub mod filestore;
pub mod memstore;
pub mod wal;

pub use cost::CostModel;
pub use filestore::FileStore;
pub use memstore::MemStore;
pub use wal::{LoggedOutcome, Wal, WalRecord};

use dtx_xml::Document;
use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by storage backends.
#[derive(Debug)]
pub enum StorageError {
    /// The named document does not exist in this store.
    NotFound(String),
    /// The stored bytes failed to parse as XML.
    Corrupt {
        /// Document name.
        name: String,
        /// Underlying parse failure.
        cause: dtx_xml::XmlError,
    },
    /// An I/O failure from a real backend.
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(n) => write!(f, "document {n:?} not found in store"),
            StorageError::Corrupt { name, cause } => {
                write!(f, "document {name:?} is corrupt: {cause}")
            }
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Counters exposed by every store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of document loads served.
    pub loads: u64,
    /// Number of document persists served.
    pub persists: u64,
    /// Total bytes read by loads.
    pub bytes_read: u64,
    /// Total bytes written by persists.
    pub bytes_written: u64,
}

/// The storage interface of a DTX instance (paper §2.1, *DataManager*).
///
/// A store maps document names to XML documents. DTX loads documents into
/// main memory at startup (or first touch), executes transactions against
/// the in-memory representation, and persists committed states back.
pub trait DataManager: Send {
    /// Human-readable backend name.
    fn backend(&self) -> &'static str;

    /// Lists stored document names (sorted).
    fn list(&self) -> Vec<String>;

    /// True when `name` is stored.
    fn contains(&self, name: &str) -> bool;

    /// Stores raw XML under `name` (initial population / bulk load).
    fn put_raw(&mut self, name: &str, xml: &str) -> StorageResult<()>;

    /// Loads and parses a document.
    fn load(&mut self, name: &str) -> StorageResult<Document>;

    /// Persists a document's current state (called at commit, Alg. 5
    /// l. 10 `LockManager.DataManager.persist`).
    fn persist(&mut self, name: &str, doc: &Document) -> StorageResult<()>;

    /// Removes a document from the store.
    fn remove(&mut self, name: &str) -> StorageResult<()>;

    /// I/O counters.
    fn stats(&self) -> StoreStats;
}
