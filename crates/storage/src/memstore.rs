//! The Sedna-substitute: an in-memory XML store with an I/O cost model.

use crate::cost::CostModel;
use crate::{DataManager, StorageError, StorageResult, StoreStats};
use dtx_xml::Document;
use std::collections::BTreeMap;

/// In-memory document store.
///
/// Documents are kept as serialized XML (as a disk-backed store would);
/// loads re-parse and persists re-serialize, paying the [`CostModel`]
/// charge — the same work profile DTX's DataManager had against Sedna,
/// minus the actual disk.
#[derive(Debug)]
pub struct MemStore {
    docs: BTreeMap<String, String>,
    cost: CostModel,
    stats: StoreStats,
}

impl MemStore {
    /// An empty store with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        MemStore {
            docs: BTreeMap::new(),
            cost,
            stats: StoreStats::default(),
        }
    }

    /// An empty store that charges no I/O time (tests).
    pub fn free() -> Self {
        Self::new(CostModel::zero())
    }

    /// Size in bytes of a stored document.
    pub fn size_of(&self, name: &str) -> Option<usize> {
        self.docs.get(name).map(String::len)
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.docs.values().map(String::len).sum()
    }
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl DataManager for MemStore {
    fn backend(&self) -> &'static str {
        "memstore"
    }

    fn list(&self) -> Vec<String> {
        self.docs.keys().cloned().collect()
    }

    fn contains(&self, name: &str) -> bool {
        self.docs.contains_key(name)
    }

    fn put_raw(&mut self, name: &str, xml: &str) -> StorageResult<()> {
        // Validate eagerly so corrupt documents are rejected at load time,
        // not at first transaction — via the streaming tokenizer, in
        // O(element depth) memory, instead of building a throwaway tree.
        dtx_xml::stream::validate(xml).map_err(|cause| StorageError::Corrupt {
            name: name.to_owned(),
            cause,
        })?;
        self.docs.insert(name.to_owned(), xml.to_owned());
        Ok(())
    }

    fn load(&mut self, name: &str) -> StorageResult<Document> {
        let xml = self
            .docs
            .get(name)
            .ok_or_else(|| StorageError::NotFound(name.to_owned()))?;
        self.cost.pay(xml.len());
        self.stats.loads += 1;
        self.stats.bytes_read += xml.len() as u64;
        Document::parse(xml).map_err(|cause| StorageError::Corrupt {
            name: name.to_owned(),
            cause,
        })
    }

    fn persist(&mut self, name: &str, doc: &Document) -> StorageResult<()> {
        let xml = doc.to_xml();
        self.cost.pay(xml.len());
        self.stats.persists += 1;
        self.stats.bytes_written += xml.len() as u64;
        self.docs.insert(name.to_owned(), xml);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> StorageResult<()> {
        self.docs
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(name.to_owned()))
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_load_persist_round_trip() {
        let mut s = MemStore::free();
        s.put_raw("d1", "<people><person><id>4</id></person></people>")
            .unwrap();
        assert!(s.contains("d1"));
        assert_eq!(s.list(), vec!["d1".to_owned()]);
        let mut doc = s.load("d1").unwrap();
        doc.insert_element(doc.root(), "person", dtx_xml::document::InsertPos::Into)
            .unwrap();
        s.persist("d1", &doc).unwrap();
        let again = s.load("d1").unwrap();
        assert_eq!(again.node_count(), doc.node_count());
        let st = s.stats();
        assert_eq!(st.loads, 2);
        assert_eq!(st.persists, 1);
        assert!(st.bytes_read > 0 && st.bytes_written > 0);
    }

    #[test]
    fn missing_document_errors() {
        let mut s = MemStore::free();
        assert!(matches!(s.load("nope"), Err(StorageError::NotFound(_))));
        assert!(matches!(s.remove("nope"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn corrupt_xml_rejected_at_put() {
        let mut s = MemStore::free();
        assert!(matches!(
            s.put_raw("bad", "<a><b>"),
            Err(StorageError::Corrupt { .. })
        ));
        assert!(!s.contains("bad"));
    }

    #[test]
    fn remove_deletes() {
        let mut s = MemStore::free();
        s.put_raw("d", "<r/>").unwrap();
        s.remove("d").unwrap();
        assert!(!s.contains("d"));
        assert_eq!(s.total_bytes(), 0);
    }

    #[test]
    fn sizes_tracked() {
        let mut s = MemStore::free();
        s.put_raw("d", "<r><a>xyz</a></r>").unwrap();
        assert_eq!(s.size_of("d"), Some("<r><a>xyz</a></r>".len()));
        assert!(s.size_of("missing").is_none());
    }
}
