//! Per-site write-ahead log: the durability substrate.
//!
//! Every DTX site appends to one [`Wal`] — a single log for all documents
//! and transactions hosted there (one appender per site, not a log per
//! transaction, following the few-workers-many-queues design rule). The
//! log records three kinds of state:
//!
//! * **Document images** — [`WalRecord::DocBegin`] / [`WalRecord::DocChunk`]
//!   / [`WalRecord::DocEnd`]: the committed state of a document when it
//!   was installed at the site, streamed through the chunked event layer
//!   ([`dtx_xml::ChunkedWriter`] → [`dtx_xml::ChunkAssembler`]) so writing
//!   and replaying an image both run in O(chunk + depth) memory. Replica
//!   copy ships the same chunks.
//! * **Redo/undo** — [`WalRecord::Applied`] (one of the five update
//!   operations applied at this site, with everything needed to re-apply
//!   it) and [`WalRecord::Undone`] (that application was rolled back).
//!   Replay repeats history: re-running the log's apply/undo sequence
//!   through the same code paths reproduces the crashed site's state
//!   byte-for-byte, because node-id assignment is deterministic.
//! * **2PC state** — the presumed-abort protocol's durable points:
//!   [`WalRecord::Prepared`] (participant voted yes; *forced* before the
//!   vote is sent), [`WalRecord::Decision`] (coordinator decided commit;
//!   *forced* before any commit is sent — abort decisions are **not**
//!   logged, they are the presumption), [`WalRecord::Committed`]
//!   (participant applied the commit; forced before the ack),
//!   [`WalRecord::Aborted`] (unforced hint that shortens replay), and
//!   [`WalRecord::End`] (coordinator collected every ack and may forget
//!   the transaction).
//!
//! The log is an in-memory append-only vector behind a mutex — the
//! simulation's "disk". What makes it act like one is ownership: the
//! cluster holds each site's [`Wal`] in an [`std::sync::Arc`] registry
//! that survives the scheduler thread, so killing a site loses every
//! in-memory structure *except* its log, exactly as a crash loses RAM but
//! not stable storage. Forces are counted (they would be fsyncs) so
//! benchmarks can report the protocol's forced-write cost.

use crate::StorageResult;
use dtx_locks::txn::TxnId;
use dtx_net::SiteId;
use dtx_trace::{EventKind, TraceSink};
use dtx_xpath::UpdateOp;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

/// One append-only log entry. See the module docs for the record roles.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A document image begins: name + the DataGuide in wire form
    /// ([`dtx_dataguide` `to_wire`] format, shipped alongside the data so
    /// replay adopts the guide instead of rebuilding it).
    DocBegin {
        /// Document name.
        doc: String,
        /// DataGuide wire form.
        guide_wire: String,
    },
    /// One chunk of the image's XML text (event-boundary aligned, so it
    /// re-tokenizes independently).
    DocChunk {
        /// Document name.
        doc: String,
        /// Chunk bytes.
        xml: String,
    },
    /// The image is complete.
    DocEnd {
        /// Document name.
        doc: String,
    },
    /// Redo: operation `op_seq` of `txn` was applied to `doc` here.
    Applied {
        /// The transaction.
        txn: TxnId,
        /// Target document.
        doc: String,
        /// Operation index within the transaction.
        op_seq: usize,
        /// The operation (replay re-applies it through the same path).
        op: UpdateOp,
    },
    /// Undo: the application of `op_seq` was rolled back (partial-failure
    /// undo of a write-all, not a whole-transaction abort).
    Undone {
        /// The transaction.
        txn: TxnId,
        /// Operation index that was undone.
        op_seq: usize,
    },
    /// Participant force-logged its yes vote: the transaction is **in
    /// doubt** here until a decision arrives or presumed abort resolves
    /// it.
    Prepared {
        /// The transaction.
        txn: TxnId,
        /// Who coordinates it (whom to re-ask after a restart).
        coordinator: SiteId,
        /// The other participants (the cooperative-termination peers).
        participants: Vec<SiteId>,
    },
    /// Coordinator force-logged the **commit** decision. Presumed abort:
    /// there is no abort counterpart — a missing decision *is* the abort
    /// decision.
    Decision {
        /// The transaction.
        txn: TxnId,
        /// Participants that must learn the decision.
        participants: Vec<SiteId>,
    },
    /// Participant committed locally (forced before the ack, so a
    /// restarted participant never re-asks about work it already
    /// finished).
    Committed {
        /// The transaction.
        txn: TxnId,
    },
    /// Participant aborted locally. Unforced — losing it costs only a
    /// redundant presumed-abort resolution at replay, never correctness.
    Aborted {
        /// The transaction.
        txn: TxnId,
    },
    /// Coordinator collected every commit ack; the transaction can be
    /// forgotten (a decision-request for it now gets the presumed-abort
    /// answer only if no [`WalRecord::Decision`] precedes — see
    /// [`Wal::decision_of`]).
    End {
        /// The transaction.
        txn: TxnId,
    },
}

impl WalRecord {
    /// Approximate serialized size in bytes (the log's byte gauge; what
    /// a disk log would grow by).
    pub fn byte_size(&self) -> usize {
        match self {
            WalRecord::DocBegin { doc, guide_wire } => 16 + doc.len() + guide_wire.len(),
            WalRecord::DocChunk { doc, xml } => 16 + doc.len() + xml.len(),
            WalRecord::DocEnd { doc } => 16 + doc.len(),
            WalRecord::Applied { doc, .. } => 96 + doc.len(),
            WalRecord::Undone { .. } => 24,
            WalRecord::Prepared { participants, .. } => 32 + participants.len() * 2,
            WalRecord::Decision { participants, .. } => 24 + participants.len() * 2,
            WalRecord::Committed { .. } | WalRecord::Aborted { .. } | WalRecord::End { .. } => 16,
        }
    }

    /// The record's variant name (`"Prepared"`, `"Decision"`, …) — the
    /// `rec` field of [`EventKind::WalAppend`] / [`EventKind::WalForce`]
    /// trace events, and what the checker's forced-point laws match on.
    pub fn tag(&self) -> &'static str {
        match self {
            WalRecord::DocBegin { .. } => "DocBegin",
            WalRecord::DocChunk { .. } => "DocChunk",
            WalRecord::DocEnd { .. } => "DocEnd",
            WalRecord::Applied { .. } => "Applied",
            WalRecord::Undone { .. } => "Undone",
            WalRecord::Prepared { .. } => "Prepared",
            WalRecord::Decision { .. } => "Decision",
            WalRecord::Committed { .. } => "Committed",
            WalRecord::Aborted { .. } => "Aborted",
            WalRecord::End { .. } => "End",
        }
    }

    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            WalRecord::Applied { txn, .. }
            | WalRecord::Undone { txn, .. }
            | WalRecord::Prepared { txn, .. }
            | WalRecord::Decision { txn, .. }
            | WalRecord::Committed { txn }
            | WalRecord::Aborted { txn }
            | WalRecord::End { txn } => Some(*txn),
            _ => None,
        }
    }
}

/// What a site's log knows about a transaction's outcome — the oracle
/// behind decision requests and cooperative termination queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggedOutcome {
    /// A commit decision / local commit is on record.
    Committed,
    /// A local abort is on record, or nothing at all is (presumed abort).
    Aborted,
    /// Prepared (or decided-pending) with no outcome yet: genuinely in
    /// doubt, the answer must wait.
    InDoubt,
}

/// A site's write-ahead log. Cheap to share (`Arc<Wal>`); the cluster's
/// durable registry keeps it alive across scheduler kills.
#[derive(Debug, Default)]
pub struct Wal {
    records: Mutex<Vec<WalRecord>>,
    bytes: AtomicU64,
    forces: AtomicU64,
    /// Trace recording handle (disabled by default; [`Wal::set_trace`]).
    /// Written once at cluster wiring, read on every append — the
    /// RwLock read path is uncontended.
    trace: RwLock<TraceSink>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms trace recording: every append/force stamps a
    /// [`EventKind::WalAppend`] / [`EventKind::WalForce`] event into
    /// `sink`'s ring. The sink survives scheduler kills along with the
    /// log, so replay appends after a restart are traced too.
    pub fn set_trace(&self, sink: TraceSink) {
        *self.trace.write() = sink;
    }

    /// Appends a record (unforced — a buffered write).
    pub fn append(&self, rec: WalRecord) {
        self.bytes
            .fetch_add(rec.byte_size() as u64, Ordering::Relaxed);
        self.trace.read().emit(|| EventKind::WalAppend {
            txn: rec.txn().map(|t| t.0).unwrap_or(0),
            rec: rec.tag(),
        });
        self.records.lock().push(rec);
    }

    /// Appends a record and **forces** it (what a disk log would fsync):
    /// the record — and per the log's append order everything before it —
    /// is durable when this returns. In this in-memory stand-in that is
    /// true of `append` too; `force` additionally counts the sync, so
    /// benchmarks see the protocol's forced-write cost.
    pub fn force(&self, rec: WalRecord) {
        let (txn, tag) = (rec.txn().map(|t| t.0).unwrap_or(0), rec.tag());
        self.append(rec);
        self.forces.fetch_add(1, Ordering::Relaxed);
        self.trace
            .read()
            .emit(|| EventKind::WalForce { txn, rec: tag });
    }

    /// Number of records logged.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Approximate log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Forced writes so far (the fsync count a disk log would have paid).
    pub fn forces(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the whole log, in append order — what
    /// recovery replays. (A disk log would stream this; the copy keeps
    /// replay free of the appender's lock.)
    pub fn snapshot(&self) -> Vec<WalRecord> {
        self.records.lock().clone()
    }

    /// Discards everything logged so far (test/bench setup between
    /// phases; a real log would truncate at a checkpoint).
    pub fn reset(&self) {
        self.records.lock().clear();
        self.bytes.store(0, Ordering::Relaxed);
        self.forces.store(0, Ordering::Relaxed);
    }

    /// The **coordinator-side** answer to "what happened to `txn`?", per
    /// presumed abort: a logged [`WalRecord::Decision`] means committed —
    /// even after [`WalRecord::End`], since the log retains it — and no
    /// decision on record means aborted. Callers that still have the
    /// transaction live (not yet decided) must answer "in doubt"
    /// themselves *before* consulting the log.
    pub fn decision_of(&self, txn: TxnId) -> LoggedOutcome {
        let records = self.records.lock();
        for rec in records.iter().rev() {
            if let WalRecord::Decision { txn: t, .. } = rec {
                if *t == txn {
                    return LoggedOutcome::Committed;
                }
            }
        }
        LoggedOutcome::Aborted
    }

    /// The **participant-side** answer to a cooperative-termination query
    /// about `txn`: committed / aborted when this site saw the outcome,
    /// in doubt when it prepared and is itself still waiting, and aborted
    /// (presumed) when it never prepared — a coordinator can only have
    /// decided commit after *every* participant prepared, so a
    /// participant with no prepared record safely vouches for abort.
    pub fn participant_outcome(&self, txn: TxnId) -> LoggedOutcome {
        let records = self.records.lock();
        let mut prepared = false;
        for rec in records.iter() {
            match rec {
                WalRecord::Committed { txn: t } if *t == txn => return LoggedOutcome::Committed,
                WalRecord::Aborted { txn: t } if *t == txn => return LoggedOutcome::Aborted,
                WalRecord::Prepared { txn: t, .. } if *t == txn => prepared = true,
                _ => {}
            }
        }
        if prepared {
            LoggedOutcome::InDoubt
        } else {
            LoggedOutcome::Aborted
        }
    }

    /// Appends a complete document image, streamed through the chunked
    /// event layer: [`WalRecord::DocBegin`], then `xml` re-chunked at
    /// event boundaries into [`WalRecord::DocChunk`]s of roughly
    /// `chunk_size` bytes, then [`WalRecord::DocEnd`]. Peak transient
    /// memory beyond the stored records is O(chunk + depth).
    pub fn append_doc_image(
        &self,
        doc: &str,
        xml: &str,
        guide_wire: &str,
        chunk_size: usize,
    ) -> StorageResult<()> {
        self.append(WalRecord::DocBegin {
            doc: doc.to_owned(),
            guide_wire: guide_wire.to_owned(),
        });
        let mut writer = dtx_xml::ChunkedWriter::new(chunk_size, |chunk: &str| {
            self.append(WalRecord::DocChunk {
                doc: doc.to_owned(),
                xml: chunk.to_owned(),
            });
            Ok(())
        });
        let mut tok = dtx_xml::XmlTokenizer::new(xml);
        dtx_xml::stream::pump(&mut tok, &mut writer).map_err(|cause| {
            crate::StorageError::Corrupt {
                name: doc.to_owned(),
                cause,
            }
        })?;
        writer
            .finish()
            .map_err(|cause| crate::StorageError::Corrupt {
                name: doc.to_owned(),
                cause,
            })?;
        self.append(WalRecord::DocEnd {
            doc: doc.to_owned(),
        });
        self.forces.fetch_add(1, Ordering::Relaxed);
        self.trace.read().emit(|| EventKind::WalForce {
            txn: 0,
            rec: "DocEnd",
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xpath::Query;

    #[test]
    fn append_and_snapshot_preserve_order() {
        let wal = Wal::new();
        wal.append(WalRecord::Applied {
            txn: TxnId(1),
            doc: "d".into(),
            op_seq: 0,
            op: UpdateOp::Remove {
                target: Query::parse("/a/b").unwrap(),
            },
        });
        wal.force(WalRecord::Prepared {
            txn: TxnId(1),
            coordinator: SiteId(0),
            participants: vec![SiteId(1)],
        });
        let snap = wal.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(matches!(snap[0], WalRecord::Applied { .. }));
        assert!(matches!(snap[1], WalRecord::Prepared { .. }));
        assert_eq!(wal.forces(), 1);
        assert!(wal.bytes() > 0);
    }

    #[test]
    fn presumed_abort_oracle() {
        let wal = Wal::new();
        // Nothing on record → presumed abort.
        assert_eq!(wal.decision_of(TxnId(9)), LoggedOutcome::Aborted);
        assert_eq!(wal.participant_outcome(TxnId(9)), LoggedOutcome::Aborted);
        // Prepared without outcome → in doubt (participant side only).
        wal.force(WalRecord::Prepared {
            txn: TxnId(1),
            coordinator: SiteId(2),
            participants: vec![],
        });
        assert_eq!(wal.participant_outcome(TxnId(1)), LoggedOutcome::InDoubt);
        // Decision on record → committed, even after End.
        wal.force(WalRecord::Decision {
            txn: TxnId(1),
            participants: vec![SiteId(1)],
        });
        wal.append(WalRecord::End { txn: TxnId(1) });
        assert_eq!(wal.decision_of(TxnId(1)), LoggedOutcome::Committed);
        // Local commit closes the participant's view.
        wal.force(WalRecord::Committed { txn: TxnId(1) });
        assert_eq!(wal.participant_outcome(TxnId(1)), LoggedOutcome::Committed);
    }

    #[test]
    fn doc_image_round_trips_through_chunks() {
        let wal = Wal::new();
        let mut xml = String::from("<r>");
        for i in 0..40 {
            xml.push_str(&format!("<x n=\"{i}\">v{i}</x>"));
        }
        xml.push_str("</r>");
        wal.append_doc_image("d", &xml, "guide-wire", 64).unwrap();
        let snap = wal.snapshot();
        assert!(matches!(&snap[0], WalRecord::DocBegin { doc, guide_wire }
            if doc == "d" && guide_wire == "guide-wire"));
        assert!(matches!(snap.last().unwrap(), WalRecord::DocEnd { .. }));
        let chunks = snap.len() - 2;
        assert!(chunks > 3, "image split into chunks, got {chunks}");
        // Reassemble through the same event layer.
        let mut asm = dtx_xml::ChunkAssembler::new();
        for rec in &snap {
            if let WalRecord::DocChunk { xml, .. } = rec {
                asm.chunk(xml).unwrap();
            }
        }
        let rebuilt = asm.finish().unwrap();
        assert_eq!(rebuilt.to_xml(), dtx_xml::parse(&xml).unwrap().to_xml());
    }
}
