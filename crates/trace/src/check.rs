//! The trace-invariant checker: replays a captured [`Trace`] and
//! asserts the protocol laws the system claims to uphold, turning every
//! chaos/recovery run into a machine-checked oracle.
//!
//! The laws (see [`LAWS`]):
//!
//! 1. **prepared-before-vote** — a participant never sends a yes-vote
//!    ([`EventKind::VoteYes`]) before force-logging `Prepared` for that
//!    transaction on the same site (presumed abort requires the vote to
//!    survive a crash).
//! 2. **decision-before-commit** — a coordinator never puts a commit
//!    into a termination batch ([`EventKind::CommitSent`]) before
//!    force-logging `Decision` for that transaction (a commit heard by
//!    a participant must be recoverable).
//! 3. **link-fifo** — per ordered site pair, messages are delivered in
//!    send order (drops leave gaps; they never reorder survivors).
//! 4. **locks-released** — every lock grant entry is matched by a
//!    release on the same site by the end of the trace (strict 2PL: no
//!    terminate path leaks a lock). A site crash clears its table.
//! 5. **pins-unpinned** — every snapshot pin is matched by an unpin on
//!    the same site (no pin leak keeps old versions alive forever). A
//!    site crash clears its pins.
//!
//! Same-site ordering uses the ring sequence (true program order), not
//! the merged timeline, so the verdict is independent of clock
//! granularity. A trace with ring overflow (`dropped > 0`) is *not
//! certified*: [`CheckReport::complete`] is false and [`CheckReport::ok`]
//! fails, because a missing event could hide any violation.

use crate::{EventKind, Trace, TraceEvent};
use std::collections::HashMap;

/// The invariant names, in the order they are checked.
pub const LAWS: [&str; 5] = [
    "prepared-before-vote",
    "decision-before-commit",
    "link-fifo",
    "locks-released",
    "pins-unpinned",
];

/// One violated invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which law (an entry of [`LAWS`]).
    pub law: &'static str,
    /// Site the violation was observed on.
    pub site: u16,
    /// Human-readable specifics.
    pub detail: String,
}

/// What the checker looked at — evidence that the laws were exercised,
/// not vacuously true on an empty trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Events examined.
    pub events: usize,
    /// Yes-votes checked against law 1.
    pub votes: usize,
    /// Commit-batch entries checked against law 2.
    pub commits: usize,
    /// Ordered links checked against law 3.
    pub links: usize,
    /// (site, txn) lock scopes balanced by law 4.
    pub lock_scopes: usize,
    /// (site, txn, doc) pins balanced by law 5.
    pub pins: usize,
}

/// The checker's verdict.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// False when the trace lost events to ring overflow — the laws
    /// cannot be certified on a partial trace.
    pub complete: bool,
    /// Everything that was checked.
    pub stats: CheckStats,
    /// Every violated law instance (empty on a clean trace).
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// True when the trace is complete and no law was violated.
    pub fn ok(&self) -> bool {
        self.complete && self.violations.is_empty()
    }

    /// One line per violation (plus a completeness note), for asserts.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if !self.complete {
            out.push_str("trace incomplete: ring overflow dropped events\n");
        }
        for v in &self.violations {
            out.push_str(&format!("[{}] site {}: {}\n", v.law, v.site, v.detail));
        }
        if out.is_empty() {
            out.push_str("all laws hold\n");
        }
        out
    }
}

/// Replays `trace` and checks every law. See the module docs for the
/// list and the crash semantics.
pub fn check(trace: &Trace) -> CheckReport {
    let mut report = CheckReport {
        complete: trace.dropped == 0,
        stats: CheckStats {
            events: trace.events.len(),
            ..CheckStats::default()
        },
        violations: Vec::new(),
    };

    // Same-site program order: group by site, sort by ring seq.
    let mut by_site: HashMap<u16, Vec<&TraceEvent>> = HashMap::new();
    for e in &trace.events {
        by_site.entry(e.site).or_default().push(e);
    }
    for events in by_site.values_mut() {
        events.sort_by_key(|e| e.seq);
    }

    check_forced_ordering(&by_site, &mut report);
    check_link_fifo(&by_site, &mut report);
    check_lock_balance(&by_site, &mut report);
    check_pin_balance(&by_site, &mut report);
    report
}

/// Laws 1 and 2: the forced WAL point precedes the protocol message
/// that makes it observable, in same-site program order.
fn check_forced_ordering(by_site: &HashMap<u16, Vec<&TraceEvent>>, report: &mut CheckReport) {
    for (&site, events) in by_site {
        let mut prepared_forced: HashMap<u64, bool> = HashMap::new();
        let mut decision_forced: HashMap<u64, bool> = HashMap::new();
        for e in events {
            match e.kind {
                EventKind::WalForce { txn, rec } => match rec {
                    "Prepared" => {
                        prepared_forced.insert(txn, true);
                    }
                    "Decision" => {
                        decision_forced.insert(txn, true);
                    }
                    _ => {}
                },
                EventKind::VoteYes { txn } => {
                    report.stats.votes += 1;
                    if !prepared_forced.get(&txn).copied().unwrap_or(false) {
                        report.violations.push(Violation {
                            law: "prepared-before-vote",
                            site,
                            detail: format!(
                                "txn {txn} voted yes with no forced Prepared before it"
                            ),
                        });
                    }
                }
                EventKind::CommitSent { txn, to } => {
                    report.stats.commits += 1;
                    if !decision_forced.get(&txn).copied().unwrap_or(false) {
                        report.violations.push(Violation {
                            law: "decision-before-commit",
                            site,
                            detail: format!(
                                "txn {txn} commit batched to s{to} with no forced Decision before it"
                            ),
                        });
                    }
                }
                // A crash wipes volatile state but NOT the forced log:
                // forced Prepared/Decision survive by construction, so
                // the maps deliberately persist across Crash/Restart.
                _ => {}
            }
        }
    }
}

/// Law 3: per ordered link, the delivered message-id sequence preserves
/// the sent order (gaps allowed — drops and dead sites eat messages,
/// they do not reorder them).
fn check_link_fifo(by_site: &HashMap<u16, Vec<&TraceEvent>>, report: &mut CheckReport) {
    // Send order per link, from the *sender's* ring order.
    let mut sent: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
    // Delivery order per link, from the *receiver's* ring order.
    let mut delivered: HashMap<(u16, u16), Vec<u64>> = HashMap::new();
    for events in by_site.values() {
        for e in events {
            match e.kind {
                EventKind::MsgSend { msg, from, to, .. } => {
                    sent.entry((from, to)).or_default().push(msg);
                }
                EventKind::MsgDeliver { msg, from, to, .. } => {
                    delivered.entry((from, to)).or_default().push(msg);
                }
                _ => {}
            }
        }
    }
    for (link, got) in &delivered {
        report.stats.links += 1;
        let sent_ids = sent.get(link).map(Vec::as_slice).unwrap_or(&[]);
        let mut cursor = 0usize;
        for &msg in got {
            match sent_ids[cursor..].iter().position(|&s| s == msg) {
                Some(off) => cursor += off + 1,
                None => {
                    let law_detail = if sent_ids.contains(&msg) {
                        format!(
                            "msg {msg} delivered out of send order on s{}->s{}",
                            link.0, link.1
                        )
                    } else {
                        format!(
                            "msg {msg} delivered on s{}->s{} but never sent there",
                            link.0, link.1
                        )
                    };
                    report.violations.push(Violation {
                        law: "link-fifo",
                        site: link.1,
                        detail: law_detail,
                    });
                }
            }
        }
    }
}

/// Law 4: per (site, txn), grant entries minus released entries hits
/// zero by the end of the trace; a site crash clears its whole table.
fn check_lock_balance(by_site: &HashMap<u16, Vec<&TraceEvent>>, report: &mut CheckReport) {
    for (&site, events) in by_site {
        let mut balance: HashMap<u64, i64> = HashMap::new();
        let mut scopes = 0usize;
        for e in events {
            match e.kind {
                EventKind::LockGrant { txn, .. } => {
                    let b = balance.entry(txn).or_insert_with(|| {
                        scopes += 1;
                        0
                    });
                    *b += 1;
                }
                EventKind::LockRelease { txn, entries } => {
                    *balance.entry(txn).or_default() -= entries as i64;
                }
                EventKind::Crash => balance.clear(),
                _ => {}
            }
        }
        report.stats.lock_scopes += scopes;
        let mut leaked: Vec<(u64, i64)> = balance.into_iter().filter(|&(_, b)| b != 0).collect();
        leaked.sort_unstable();
        for (txn, b) in leaked {
            report.violations.push(Violation {
                law: "locks-released",
                site,
                detail: if b > 0 {
                    format!("txn {txn} holds {b} unreleased lock entr{}", ies(b))
                } else {
                    format!(
                        "txn {txn} released {} more entr{} than granted",
                        -b,
                        ies(-b)
                    )
                },
            });
        }
    }
}

fn ies(n: i64) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

/// Law 5: per (site, txn, doc), pins match unpins by trace end; a site
/// crash clears its pins.
fn check_pin_balance(by_site: &HashMap<u16, Vec<&TraceEvent>>, report: &mut CheckReport) {
    for (&site, events) in by_site {
        let mut pinned: HashMap<(u64, u64), u64> = HashMap::new();
        for e in events {
            match e.kind {
                EventKind::SnapPin { txn, doc, .. } => {
                    report.stats.pins += 1;
                    *pinned.entry((txn, doc)).or_default() += 1;
                }
                EventKind::SnapUnpin { txn, doc, .. } => match pinned.get_mut(&(txn, doc)) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => report.violations.push(Violation {
                        law: "pins-unpinned",
                        site,
                        detail: format!("txn {txn} unpinned doc {doc:x} it never pinned"),
                    }),
                },
                EventKind::Crash => pinned.clear(),
                _ => {}
            }
        }
        let mut leaked: Vec<(u64, u64)> = pinned
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|((txn, doc), _)| (txn, doc))
            .collect();
        leaked.sort_unstable();
        for (txn, doc) in leaked {
            report.violations.push(Violation {
                law: "pins-unpinned",
                site,
                detail: format!("txn {txn} never unpinned doc {doc:x}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    /// Builds a trace from (site, kind) pairs: seq/ts follow list order.
    fn trace_of(events: &[(u16, EventKind)]) -> Trace {
        let mut per_site: HashMap<u16, u64> = HashMap::new();
        Trace {
            events: events
                .iter()
                .enumerate()
                .map(|(i, &(site, kind))| {
                    let seq = per_site.entry(site).or_insert(0);
                    let e = TraceEvent {
                        site,
                        ts_ns: i as u64 * 1000,
                        seq: *seq,
                        kind,
                    };
                    *seq += 1;
                    e
                })
                .collect(),
            dropped: 0,
        }
    }

    fn law_violations<'a>(report: &'a CheckReport, law: &str) -> Vec<&'a Violation> {
        report.violations.iter().filter(|v| v.law == law).collect()
    }

    /// A healthy 2PC round: coordinator 0, participant 1, txn 5, plus a
    /// snapshot reader (txn 9) on site 1.
    fn good_events() -> Vec<(u16, EventKind)> {
        vec![
            (
                0,
                EventKind::PhaseEnter {
                    txn: 5,
                    phase: "AwaitingPrepareAcks",
                },
            ),
            (
                0,
                EventKind::MsgSend {
                    msg: 1,
                    from: 0,
                    to: 1,
                    label: "Prepare",
                    deliver_at_ns: 0,
                    bytes: 128,
                },
            ),
            (
                1,
                EventKind::MsgDeliver {
                    msg: 1,
                    from: 0,
                    to: 1,
                    label: "Prepare",
                },
            ),
            (
                1,
                EventKind::LockGrant {
                    txn: 5,
                    node: 3,
                    mode: "X",
                },
            ),
            (
                1,
                EventKind::WalForce {
                    txn: 5,
                    rec: "Prepared",
                },
            ),
            (1, EventKind::VoteYes { txn: 5 }),
            (
                1,
                EventKind::MsgSend {
                    msg: 2,
                    from: 1,
                    to: 0,
                    label: "PrepareAck",
                    deliver_at_ns: 0,
                    bytes: 128,
                },
            ),
            (
                0,
                EventKind::MsgDeliver {
                    msg: 2,
                    from: 1,
                    to: 0,
                    label: "PrepareAck",
                },
            ),
            (
                0,
                EventKind::WalForce {
                    txn: 5,
                    rec: "Decision",
                },
            ),
            (0, EventKind::CommitSent { txn: 5, to: 1 }),
            (
                0,
                EventKind::MsgSend {
                    msg: 3,
                    from: 0,
                    to: 1,
                    label: "TerminateBatch",
                    deliver_at_ns: 0,
                    bytes: 256,
                },
            ),
            (
                1,
                EventKind::MsgDeliver {
                    msg: 3,
                    from: 0,
                    to: 1,
                    label: "TerminateBatch",
                },
            ),
            (
                1,
                EventKind::WalForce {
                    txn: 5,
                    rec: "Committed",
                },
            ),
            (1, EventKind::LockRelease { txn: 5, entries: 1 }),
            (
                1,
                EventKind::SnapPin {
                    txn: 9,
                    doc: 0xd0c,
                    version: 2,
                },
            ),
            (
                1,
                EventKind::SnapUnpin {
                    txn: 9,
                    doc: 0xd0c,
                    version: 2,
                },
            ),
        ]
    }

    #[test]
    fn clean_trace_passes_every_law() {
        let report = check(&trace_of(&good_events()));
        assert!(report.ok(), "{}", report.summary());
        assert_eq!(report.violations, vec![]);
        // The laws were actually exercised, not vacuously true.
        assert_eq!(report.stats.votes, 1);
        assert_eq!(report.stats.commits, 1);
        assert!(report.stats.links >= 2);
        assert_eq!(report.stats.lock_scopes, 1);
        assert_eq!(report.stats.pins, 1);
    }

    #[test]
    fn doctored_vote_without_forced_prepared_fails() {
        let events: Vec<_> = good_events()
            .into_iter()
            .filter(|(_, k)| {
                !matches!(
                    k,
                    EventKind::WalForce {
                        rec: "Prepared",
                        ..
                    }
                )
            })
            .collect();
        let report = check(&trace_of(&events));
        assert!(!report.ok());
        let v = law_violations(&report, "prepared-before-vote");
        assert_eq!(v.len(), 1, "{}", report.summary());
        assert_eq!(v[0].site, 1);
    }

    #[test]
    fn doctored_vote_before_forced_prepared_fails() {
        // The force exists but AFTER the vote: same law, ordering arm.
        let mut events = good_events();
        let force_at = events
            .iter()
            .position(|(_, k)| {
                matches!(
                    k,
                    EventKind::WalForce {
                        rec: "Prepared",
                        ..
                    }
                )
            })
            .unwrap();
        events.swap(force_at, force_at + 1); // vote now precedes force
        let report = check(&trace_of(&events));
        assert_eq!(law_violations(&report, "prepared-before-vote").len(), 1);
    }

    #[test]
    fn doctored_commit_without_forced_decision_fails() {
        let events: Vec<_> = good_events()
            .into_iter()
            .filter(|(_, k)| {
                !matches!(
                    k,
                    EventKind::WalForce {
                        rec: "Decision",
                        ..
                    }
                )
            })
            .collect();
        let report = check(&trace_of(&events));
        let v = law_violations(&report, "decision-before-commit");
        assert_eq!(v.len(), 1, "{}", report.summary());
        assert_eq!(v[0].site, 0);
        assert!(v[0].detail.contains("txn 5"));
    }

    #[test]
    fn doctored_link_reorder_fails() {
        let mut events = good_events();
        // Messages 1 and 3 both travel 0 -> 1; deliver them swapped.
        let d1 = events
            .iter()
            .position(|(_, k)| matches!(k, EventKind::MsgDeliver { msg: 1, .. }))
            .unwrap();
        let d3 = events
            .iter()
            .position(|(_, k)| matches!(k, EventKind::MsgDeliver { msg: 3, .. }))
            .unwrap();
        events.swap(d1, d3);
        let report = check(&trace_of(&events));
        assert!(
            !law_violations(&report, "link-fifo").is_empty(),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn doctored_phantom_delivery_fails() {
        let mut events = good_events();
        events.push((
            1,
            EventKind::MsgDeliver {
                msg: 99,
                from: 0,
                to: 1,
                label: "Wake",
            },
        ));
        let report = check(&trace_of(&events));
        let v = law_violations(&report, "link-fifo");
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("never sent"));
    }

    #[test]
    fn dropped_messages_leave_gaps_without_violation() {
        let mut events = good_events();
        // A message sent 0 -> 1 that never arrives (chaos drop): fine.
        events.insert(
            1,
            (
                0,
                EventKind::MsgSend {
                    msg: 50,
                    from: 0,
                    to: 1,
                    label: "Wake",
                    deliver_at_ns: 0,
                    bytes: 64,
                },
            ),
        );
        let report = check(&trace_of(&events));
        assert!(report.ok(), "{}", report.summary());
    }

    #[test]
    fn doctored_lock_leak_fails() {
        let events: Vec<_> = good_events()
            .into_iter()
            .filter(|(_, k)| !matches!(k, EventKind::LockRelease { .. }))
            .collect();
        let report = check(&trace_of(&events));
        let v = law_violations(&report, "locks-released");
        assert_eq!(v.len(), 1, "{}", report.summary());
        assert!(v[0].detail.contains("txn 5"));
        assert_eq!(v[0].site, 1);
    }

    #[test]
    fn doctored_partial_release_fails() {
        // Two grants, a release of only one entry: still a leak.
        let mut events = good_events();
        let grant_at = events
            .iter()
            .position(|(_, k)| matches!(k, EventKind::LockGrant { .. }))
            .unwrap();
        events.insert(
            grant_at,
            (
                1,
                EventKind::LockGrant {
                    txn: 5,
                    node: 8,
                    mode: "IX",
                },
            ),
        );
        let report = check(&trace_of(&events));
        assert_eq!(law_violations(&report, "locks-released").len(), 1);
    }

    #[test]
    fn doctored_pin_leak_fails() {
        let events: Vec<_> = good_events()
            .into_iter()
            .filter(|(_, k)| !matches!(k, EventKind::SnapUnpin { .. }))
            .collect();
        let report = check(&trace_of(&events));
        let v = law_violations(&report, "pins-unpinned");
        assert_eq!(v.len(), 1, "{}", report.summary());
        assert!(v[0].detail.contains("txn 9"));
    }

    #[test]
    fn doctored_unmatched_unpin_fails() {
        let mut events = good_events();
        events.push((
            1,
            EventKind::SnapUnpin {
                txn: 11,
                doc: 0xd0c,
                version: 2,
            },
        ));
        let report = check(&trace_of(&events));
        let v = law_violations(&report, "pins-unpinned");
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("never pinned"));
    }

    #[test]
    fn crash_excuses_dead_sites_obligations() {
        // Site 1 crashes holding a lock and a pin: its table and pins
        // died with it — no violation. Its forced Prepared still counts
        // for the vote it sent before dying.
        let mut events = good_events();
        // Remove the releases, then crash the site.
        events.retain(|(_, k)| {
            !matches!(
                k,
                EventKind::LockRelease { .. } | EventKind::SnapUnpin { .. }
            )
        });
        events.push((1, EventKind::Crash));
        events.push((
            1,
            EventKind::Restart {
                in_doubt: 1,
                undelivered: 0,
            },
        ));
        let report = check(&trace_of(&events));
        assert!(report.ok(), "{}", report.summary());
        // But obligations acquired AFTER the restart still bind.
        events.push((
            1,
            EventKind::LockGrant {
                txn: 12,
                node: 4,
                mode: "X",
            },
        ));
        let report = check(&trace_of(&events));
        assert_eq!(law_violations(&report, "locks-released").len(), 1);
    }

    #[test]
    fn incomplete_trace_is_never_certified() {
        let mut t = trace_of(&good_events());
        t.dropped = 3;
        let report = check(&t);
        assert!(!report.ok());
        assert!(!report.complete);
        assert!(
            report.violations.is_empty(),
            "laws still hold on what's there"
        );
        assert!(report.summary().contains("incomplete"));
    }
}
