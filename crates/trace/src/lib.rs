//! # dtx-trace — causal event tracing for the DTX cluster
//!
//! Aggregate counters ([`dtx-core`'s `Metrics`]) answer "how many?";
//! this crate answers "in what order, and where did the time go?".
//! Every subsystem — the net reactor, the scheduler, the lock table,
//! the WAL, the snapshot store — records typed [`TraceEvent`]s into a
//! **lock-free bounded per-site ring buffer** behind a [`TraceSink`]
//! handle that costs one branch when tracing is disabled (the default).
//!
//! * [`Tracer`] — owns one [ring](Ring) per site plus the shared
//!   monotone clock origin every timestamp is measured against.
//! * [`TraceSink`] — a cheap cloneable per-site recording handle.
//!   Disabled sinks ([`TraceSink::disabled`]) skip event construction
//!   entirely: [`TraceSink::emit`] takes a closure that only runs when
//!   the sink is live.
//! * [`Tracer::collect`] — merges the per-site rings into one
//!   causally-ordered timeline: same-site events keep program order,
//!   and a message's send is never placed after its delivery (send
//!   happens-before deliver).
//! * [`Trace::to_jsonl`] — hand-rolled JSONL export (the workspace's
//!   serde is an offline no-op shim), one event object per line.
//! * [`Trace::life_of`] — the human-readable "life of transaction N"
//!   view: every event that names the transaction, in causal order.
//! * [`check`] — the protocol-invariant checker: replays a captured
//!   trace and asserts 2PC ordering laws (forced `Prepared` before the
//!   yes-vote, forced `Decision` before any commit batch), per-link
//!   FIFO, strict lock release and snapshot pin/unpin balance.
//!
//! ## The ring
//!
//! Each site's ring is a Vyukov-style bounded MPMC array: producers
//! claim a slot with one CAS on the head counter, write the event, and
//! publish it by storing the slot's stamp with `Release`. There is no
//! consumer while the cluster runs — the collector drains after
//! quiescence — so a full ring **drops new events** (counted in
//! [`Trace::dropped`]) rather than blocking a scheduler or delivery
//! thread. A trace with `dropped > 0` is a partial trace; the checker
//! refuses to certify it (see [`check::CheckReport::complete`]).

#![deny(missing_docs)]

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub mod check;

/// Default per-site ring capacity (events). At roughly 64 bytes per
/// slot this is ~4 MiB per site — enough for every test and the fig12
/// capture; benches that trace bigger runs pass their own capacity.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One typed trace event's payload. Fields are fixed-size (ids, counts,
/// `&'static str` labels) so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A message was handed to the transport (recorded on the sending
    /// site). `deliver_at_ns` is the scheduled delivery instant under
    /// the latency model (equal to the send timestamp when delivery is
    /// synchronous); `msg` is the transport-wide unique message number.
    MsgSend {
        /// Transport-wide message number (matches the deliver event).
        msg: u64,
        /// Sending site.
        from: u16,
        /// Destination site.
        to: u16,
        /// Payload discriminant (e.g. `"Prepare"`, `"TerminateBatch"`).
        label: &'static str,
        /// Scheduled delivery instant, ns since the tracer origin.
        deliver_at_ns: u64,
        /// Approximate wire size.
        bytes: u32,
    },
    /// A message reached its destination endpoint (recorded on the
    /// receiving site).
    MsgDeliver {
        /// Transport-wide message number (matches the send event).
        msg: u64,
        /// Sending site.
        from: u16,
        /// Destination site.
        to: u16,
        /// Payload discriminant.
        label: &'static str,
    },
    /// The transport dropped a message (armed fault: partition or
    /// seeded loss) or its destination was dead.
    MsgDrop {
        /// Transport-wide message number.
        msg: u64,
        /// Sending site.
        from: u16,
        /// Destination site.
        to: u16,
    },
    /// A coordinator transaction entered a scheduler phase.
    PhaseEnter {
        /// The transaction.
        txn: u64,
        /// Phase name (`"Ready"`, `"AwaitingPrepareAcks"`, …).
        phase: &'static str,
    },
    /// The lock table granted a lock (a new grant entry was recorded;
    /// covered re-requests record nothing and must release nothing).
    LockGrant {
        /// The transaction.
        txn: u64,
        /// DataGuide node the lock covers.
        node: u32,
        /// Granted mode.
        mode: &'static str,
    },
    /// A lock request conflicted; the transaction will wait (or abort).
    LockWait {
        /// The requesting transaction.
        txn: u64,
        /// Contended DataGuide node.
        node: u32,
        /// One current holder (the first conflict reported).
        holder: u64,
    },
    /// The lock table released grant entries for a transaction
    /// (strict-2PL terminate release or a failed operation's scoped
    /// rollback). `entries` is the number of grant entries removed.
    LockRelease {
        /// The transaction.
        txn: u64,
        /// Grant entries removed.
        entries: u32,
    },
    /// A WAL record was appended (not forced).
    WalAppend {
        /// Transaction named by the record (0 for document images).
        txn: u64,
        /// Record discriminant (`"Applied"`, `"End"`, …).
        rec: &'static str,
    },
    /// A WAL record was force-appended (the durability point).
    WalForce {
        /// Transaction named by the record (0 for document images).
        txn: u64,
        /// Record discriminant (`"Prepared"`, `"Decision"`, …).
        rec: &'static str,
    },
    /// A read-only transaction pinned a snapshot version of a document.
    SnapPin {
        /// The reading transaction.
        txn: u64,
        /// Hashed document name (stable within a run).
        doc: u64,
        /// Pinned version number.
        version: u64,
    },
    /// A transaction's snapshot pin on a document was released.
    SnapUnpin {
        /// The reading transaction.
        txn: u64,
        /// Hashed document name.
        doc: u64,
        /// Previously pinned version number.
        version: u64,
    },
    /// Snapshot GC retired unpinned superseded versions of a document.
    SnapGc {
        /// Hashed document name.
        doc: u64,
        /// Versions retired.
        retired: u32,
    },
    /// A participant force-logged `Prepared` and voted yes (recorded at
    /// the moment the yes-vote is sent; the checker demands a same-site
    /// `WalForce{rec: "Prepared"}` earlier in program order).
    VoteYes {
        /// The transaction.
        txn: u64,
    },
    /// The coordinator put this transaction's **commit** into a
    /// termination batch bound for a participant (once per (txn,
    /// participant) send, including recovery re-delivery). The checker
    /// demands a same-site `WalForce{rec: "Decision"}` earlier.
    CommitSent {
        /// The transaction.
        txn: u64,
        /// The participant the batch is bound for.
        to: u16,
    },
    /// The coordinator put this transaction's abort into a termination
    /// batch (never forced — presumed abort).
    AbortSent {
        /// The transaction.
        txn: u64,
        /// The participant the batch is bound for.
        to: u16,
    },
    /// The site's scheduler died (fault injection or kill). Clears the
    /// site's outstanding lock/pin obligations in the checker — a dead
    /// site's lock table and pins died with it.
    Crash,
    /// The site restarted from its WAL.
    Restart {
        /// In-doubt transactions revived from forced `Prepared`s.
        in_doubt: u32,
        /// Forced decisions with no `End`: re-owned for re-delivery.
        undelivered: u32,
    },
    /// An in-doubt participant resolved a transaction's outcome
    /// (decision arrived, a peer vouched, or presumed abort fired).
    InDoubt {
        /// The transaction.
        txn: u64,
        /// Resolved to commit (`true`) or abort (`false`).
        commit: bool,
    },
}

impl EventKind {
    /// The transaction this event names, if any.
    pub fn txn(&self) -> Option<u64> {
        match *self {
            EventKind::PhaseEnter { txn, .. }
            | EventKind::LockGrant { txn, .. }
            | EventKind::LockWait { txn, .. }
            | EventKind::LockRelease { txn, .. }
            | EventKind::SnapPin { txn, .. }
            | EventKind::SnapUnpin { txn, .. }
            | EventKind::VoteYes { txn }
            | EventKind::CommitSent { txn, .. }
            | EventKind::AbortSent { txn, .. }
            | EventKind::InDoubt { txn, .. } => Some(txn),
            EventKind::WalAppend { txn, .. } | EventKind::WalForce { txn, .. } if txn != 0 => {
                Some(txn)
            }
            _ => None,
        }
    }

    /// Short lowercase discriminant name for export and display.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MsgSend { .. } => "msg_send",
            EventKind::MsgDeliver { .. } => "msg_deliver",
            EventKind::MsgDrop { .. } => "msg_drop",
            EventKind::PhaseEnter { .. } => "phase_enter",
            EventKind::LockGrant { .. } => "lock_grant",
            EventKind::LockWait { .. } => "lock_wait",
            EventKind::LockRelease { .. } => "lock_release",
            EventKind::WalAppend { .. } => "wal_append",
            EventKind::WalForce { .. } => "wal_force",
            EventKind::SnapPin { .. } => "snap_pin",
            EventKind::SnapUnpin { .. } => "snap_unpin",
            EventKind::SnapGc { .. } => "snap_gc",
            EventKind::VoteYes { .. } => "vote_yes",
            EventKind::CommitSent { .. } => "commit_sent",
            EventKind::AbortSent { .. } => "abort_sent",
            EventKind::Crash => "crash",
            EventKind::Restart { .. } => "restart",
            EventKind::InDoubt { .. } => "indoubt",
        }
    }
}

/// One recorded event: site + monotone timestamp + per-site sequence +
/// payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Recording site.
    pub site: u16,
    /// Nanoseconds since the tracer's shared origin (one monotone clock
    /// for the whole process, so cross-site timestamps are comparable).
    pub ts_ns: u64,
    /// Position in the site's ring — same-site program order.
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

/// One slot of the ring: a stamp for the Vyukov claim protocol plus the
/// payload cell the stamp publishes.
struct Slot {
    stamp: AtomicU64,
    val: UnsafeCell<MaybeUninit<(u64, EventKind)>>,
}

// Safety: slots are only written by the producer that won the CAS for
// that position, and only read by the collector once the stamp (stored
// with Release, loaded with Acquire) proves the write completed.
unsafe impl Sync for Slot {}

/// A lock-free bounded event ring (one per site). Producers never
/// block; a full ring drops and counts.
pub struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
    dropped: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        let capacity = capacity.next_power_of_two().max(8);
        Ring {
            slots: (0..capacity)
                .map(|i| Slot {
                    stamp: AtomicU64::new(i as u64),
                    val: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Claims a slot and publishes `(ts_ns, kind)`; drops (and counts)
    /// when the ring is full. Lock-free: one CAS on the hot path.
    fn push(&self, ts_ns: u64, kind: EventKind) {
        let cap = self.slots.len() as u64;
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & (cap - 1)) as usize];
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == pos {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: winning the CAS for `pos` makes this
                        // thread the slot's only writer until the stamp
                        // below publishes it.
                        unsafe { (*slot.val.get()).write((ts_ns, kind)) };
                        slot.stamp.store(pos + 1, Ordering::Release);
                        return;
                    }
                    Err(now) => pos = now,
                }
            } else if stamp < pos {
                // The slot still holds the event from one lap ago and
                // nothing consumes: the ring is full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently recorded.
    pub fn len(&self) -> usize {
        (self.head.load(Ordering::Acquire) as usize).min(self.slots.len())
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the recorded events in ring order. Meant for after the
    /// traced system quiesced; a slot whose write is still in flight is
    /// skipped (its stamp has not published it yet).
    fn drain(&self, site: u16) -> Vec<TraceEvent> {
        let n = self.len() as u64;
        let mut out = Vec::with_capacity(n as usize);
        for pos in 0..n {
            let slot = &self.slots[pos as usize];
            if slot.stamp.load(Ordering::Acquire) == pos + 1 {
                // Safety: stamp == pos + 1 (Acquire) proves the Release
                // store after the write, so the payload is initialized
                // and no writer touches it again (nothing consumes).
                let (ts_ns, kind) = unsafe { (*slot.val.get()).assume_init() };
                out.push(TraceEvent {
                    site,
                    ts_ns,
                    seq: pos,
                    kind,
                });
            }
        }
        out
    }
}

struct SinkShared {
    site: u16,
    origin: Instant,
    ring: Arc<Ring>,
}

/// A per-site recording handle. `Default`/[`TraceSink::disabled`] is
/// the off state: one branch per call site, no event construction, no
/// allocation — the zero-cost path every subsystem threads through.
#[derive(Clone, Default)]
pub struct TraceSink(Option<Arc<SinkShared>>);

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Some(s) => write!(f, "TraceSink(site {})", s.site),
            None => write!(f, "TraceSink(disabled)"),
        }
    }
}

impl TraceSink {
    /// The disabled sink: recording is a no-op.
    pub fn disabled() -> TraceSink {
        TraceSink(None)
    }

    /// True when events are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records the event built by `f` — which only runs when the sink
    /// is enabled, so disabled tracing never pays for event
    /// construction.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> EventKind) {
        if let Some(s) = &self.0 {
            s.ring.push(s.origin.elapsed().as_nanos() as u64, f());
        }
    }

    /// Nanoseconds since the tracer origin (0 when disabled) — for
    /// callers that need to stamp a *future* instant (scheduled
    /// delivery) in the same timebase.
    pub fn now_ns(&self) -> u64 {
        self.0
            .as_ref()
            .map(|s| s.origin.elapsed().as_nanos() as u64)
            .unwrap_or(0)
    }
}

/// Owns the per-site rings and the shared clock origin; hands out
/// [`TraceSink`]s and collects the merged timeline.
pub struct Tracer {
    origin: Instant,
    rings: Vec<Arc<Ring>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer({} sites)", self.rings.len())
    }
}

impl Tracer {
    /// A tracer for `sites` sites with `capacity` events per site
    /// (rounded up to a power of two).
    pub fn new(sites: usize, capacity: usize) -> Tracer {
        Tracer {
            origin: Instant::now(),
            rings: (0..sites).map(|_| Arc::new(Ring::new(capacity))).collect(),
        }
    }

    /// The sink recording into `site`'s ring. Sites beyond the
    /// constructed range get a disabled sink.
    pub fn sink(&self, site: u16) -> TraceSink {
        match self.rings.get(site as usize) {
            Some(ring) => TraceSink(Some(Arc::new(SinkShared {
                site,
                origin: self.origin,
                ring: ring.clone(),
            }))),
            None => TraceSink::disabled(),
        }
    }

    /// Records directly into `site`'s ring (the transport uses this —
    /// it delivers on behalf of every site).
    #[inline]
    pub fn record(&self, site: u16, kind: EventKind) {
        if let Some(ring) = self.rings.get(site as usize) {
            ring.push(self.origin.elapsed().as_nanos() as u64, kind);
        }
    }

    /// Nanoseconds since the origin, in the timebase every event uses.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Total events dropped across all rings (capacity exceeded).
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Total events currently recorded across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.len()).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every site's ring and merges them into one causally
    /// ordered timeline. Call after the traced cluster quiesced.
    ///
    /// The merge sorts by the shared monotone timestamp with two
    /// guarantees layered on top:
    ///
    /// * **same-site program order** — ties and sub-tick races never
    ///   reorder a site against its own ring sequence;
    /// * **send happens-before deliver** — a delivery is never placed
    ///   before its matching send (the timestamp already guarantees
    ///   this physically: the send's clock read precedes the handoff
    ///   that precedes the delivery's clock read; equal-timestamp ties
    ///   break toward the send).
    pub fn collect(&self) -> Trace {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(self.len());
        for (site, ring) in self.rings.iter().enumerate() {
            events.extend(ring.drain(site as u16));
        }
        // Sends sort before delivers on equal timestamps; (site, seq)
        // keeps the order deterministic.
        events.sort_by_key(|e| {
            let deliver = matches!(e.kind, EventKind::MsgDeliver { .. }) as u8;
            (e.ts_ns, deliver, e.site, e.seq)
        });
        Trace {
            events,
            dropped: self.dropped(),
        }
    }
}

/// A collected, causally ordered timeline.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The merged events (see [`Tracer::collect`] for the order).
    pub events: Vec<TraceEvent>,
    /// Events lost to full rings: `> 0` means the trace is partial and
    /// the checker will not certify it.
    pub dropped: u64,
}

fn write_jsonl_event(out: &mut String, e: &TraceEvent) {
    use fmt::Write as _;
    let _ = write!(
        out,
        "{{\"site\": {}, \"seq\": {}, \"ts_us\": {:.3}, \"kind\": \"{}\"",
        e.site,
        e.seq,
        e.ts_ns as f64 / 1e3,
        e.kind.name()
    );
    if let Some(txn) = e.kind.txn() {
        let _ = write!(out, ", \"txn\": {txn}");
    }
    match e.kind {
        EventKind::MsgSend {
            msg,
            from,
            to,
            label,
            deliver_at_ns,
            bytes,
        } => {
            let _ = write!(
                out,
                ", \"msg\": {msg}, \"from\": {from}, \"to\": {to}, \"label\": \"{label}\", \
                 \"deliver_at_us\": {:.3}, \"bytes\": {bytes}",
                deliver_at_ns as f64 / 1e3
            );
        }
        EventKind::MsgDeliver {
            msg,
            from,
            to,
            label,
        } => {
            let _ = write!(
                out,
                ", \"msg\": {msg}, \"from\": {from}, \"to\": {to}, \"label\": \"{label}\""
            );
        }
        EventKind::MsgDrop { msg, from, to } => {
            let _ = write!(out, ", \"msg\": {msg}, \"from\": {from}, \"to\": {to}");
        }
        EventKind::PhaseEnter { phase, .. } => {
            let _ = write!(out, ", \"phase\": \"{phase}\"");
        }
        EventKind::LockGrant { node, mode, .. } => {
            let _ = write!(out, ", \"node\": {node}, \"mode\": \"{mode}\"");
        }
        EventKind::LockWait { node, holder, .. } => {
            let _ = write!(out, ", \"node\": {node}, \"holder\": {holder}");
        }
        EventKind::LockRelease { entries, .. } => {
            let _ = write!(out, ", \"entries\": {entries}");
        }
        EventKind::WalAppend { rec, .. } | EventKind::WalForce { rec, .. } => {
            let _ = write!(out, ", \"rec\": \"{rec}\"");
        }
        EventKind::SnapPin { doc, version, .. } | EventKind::SnapUnpin { doc, version, .. } => {
            let _ = write!(out, ", \"doc\": {doc}, \"version\": {version}");
        }
        EventKind::SnapGc { doc, retired } => {
            let _ = write!(out, ", \"doc\": {doc}, \"retired\": {retired}");
        }
        EventKind::CommitSent { to, .. } | EventKind::AbortSent { to, .. } => {
            let _ = write!(out, ", \"to\": {to}");
        }
        EventKind::Restart {
            in_doubt,
            undelivered,
        } => {
            let _ = write!(
                out,
                ", \"in_doubt\": {in_doubt}, \"undelivered\": {undelivered}"
            );
        }
        EventKind::VoteYes { .. } | EventKind::Crash | EventKind::InDoubt { .. } => {}
    }
    if let EventKind::InDoubt { commit, .. } = e.kind {
        let _ = write!(out, ", \"commit\": {commit}");
    }
    out.push_str("}\n");
}

impl Trace {
    /// Exports the timeline as JSONL: one JSON object per event, one
    /// event per line (hand-rolled — serde is an offline shim).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96);
        for e in &self.events {
            write_jsonl_event(&mut out, e);
        }
        out
    }

    /// The "life of transaction N" view: every event naming `txn`, in
    /// causal order, rendered one line per event with relative time.
    pub fn life_of(&self, txn: u64) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let mut t0: Option<u64> = None;
        for e in self.events.iter().filter(|e| e.kind.txn() == Some(txn)) {
            let base = *t0.get_or_insert(e.ts_ns);
            let dt_us = (e.ts_ns - base) as f64 / 1e3;
            let _ = write!(out, "{dt_us:>10.1}us  s{:<3} {:<12}", e.site, e.kind.name());
            match e.kind {
                EventKind::PhaseEnter { phase, .. } => {
                    let _ = write!(out, " -> {phase}");
                }
                EventKind::LockGrant { node, mode, .. } => {
                    let _ = write!(out, " node {node} {mode}");
                }
                EventKind::LockWait { node, holder, .. } => {
                    let _ = write!(out, " node {node} behind txn {holder}");
                }
                EventKind::LockRelease { entries, .. } => {
                    let _ = write!(out, " {entries} entries");
                }
                EventKind::WalAppend { rec, .. } | EventKind::WalForce { rec, .. } => {
                    let _ = write!(out, " {rec}");
                }
                EventKind::SnapPin { version, .. } | EventKind::SnapUnpin { version, .. } => {
                    let _ = write!(out, " v{version}");
                }
                EventKind::CommitSent { to, .. } | EventKind::AbortSent { to, .. } => {
                    let _ = write!(out, " -> s{to}");
                }
                EventKind::InDoubt { commit, .. } => {
                    let _ = write!(out, " resolved {}", if commit { "commit" } else { "abort" });
                }
                _ => {}
            }
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("(no events name this transaction)\n");
        }
        out
    }
}

/// FNV-1a over a string — the stable in-run document-name hash the
/// snapshot events use (names are `String`s; events must not allocate).
pub fn doc_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn disabled_sink_runs_no_closure() {
        let sink = TraceSink::disabled();
        let ran = AtomicUsize::new(0);
        sink.emit(|| {
            ran.fetch_add(1, Ordering::Relaxed);
            EventKind::Crash
        });
        assert!(!sink.is_enabled());
        assert_eq!(ran.load(Ordering::Relaxed), 0, "closure must not run");
    }

    #[test]
    fn ring_records_in_order_and_drops_when_full() {
        let tracer = Tracer::new(1, 8);
        let sink = tracer.sink(0);
        for i in 0..12u64 {
            sink.emit(|| EventKind::PhaseEnter {
                txn: i,
                phase: "Ready",
            });
        }
        let trace = tracer.collect();
        assert_eq!(trace.events.len(), 8, "bounded at capacity");
        assert_eq!(trace.dropped, 4, "overflow counted, not silently lost");
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "ring order preserved");
            assert_eq!(
                e.kind,
                EventKind::PhaseEnter {
                    txn: i as u64,
                    phase: "Ready"
                }
            );
        }
    }

    #[test]
    fn concurrent_producers_lose_nothing_within_capacity() {
        let tracer = Arc::new(Tracer::new(1, 1 << 12));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let sink = tracer.sink(0);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        sink.emit(|| EventKind::PhaseEnter {
                            txn: t * 1000 + i,
                            phase: "Ready",
                        });
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let trace = tracer.collect();
        assert_eq!(trace.events.len(), 2000);
        assert_eq!(trace.dropped, 0);
        // Every producer's own events appear in its program order.
        for t in 0..4u64 {
            let mine: Vec<u64> = trace
                .events
                .iter()
                .filter_map(|e| e.kind.txn())
                .filter(|txn| txn / 1000 == t)
                .collect();
            let sorted = {
                let mut s = mine.clone();
                s.sort_unstable();
                s
            };
            assert_eq!(mine, sorted, "producer {t} order preserved");
        }
    }

    #[test]
    fn collect_orders_send_before_deliver() {
        let tracer = Tracer::new(2, 64);
        // Deliver recorded on site 1 *after* the send on site 0 in real
        // time; the merge must keep that order whatever the site ids.
        tracer.record(
            0,
            EventKind::MsgSend {
                msg: 7,
                from: 0,
                to: 1,
                label: "Prepare",
                deliver_at_ns: 0,
                bytes: 128,
            },
        );
        tracer.record(
            1,
            EventKind::MsgDeliver {
                msg: 7,
                from: 0,
                to: 1,
                label: "Prepare",
            },
        );
        let trace = tracer.collect();
        let send = trace
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::MsgSend { .. }))
            .unwrap();
        let deliver = trace
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::MsgDeliver { .. }))
            .unwrap();
        assert!(send < deliver, "send happens-before deliver");
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let tracer = Tracer::new(1, 64);
        let sink = tracer.sink(0);
        sink.emit(|| EventKind::WalForce {
            txn: 42,
            rec: "Decision",
        });
        sink.emit(|| EventKind::SnapPin {
            txn: 42,
            doc: doc_hash("d"),
            version: 3,
        });
        let jsonl = tracer.collect().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\": \"wal_force\""));
        assert!(lines[0].contains("\"txn\": 42"));
        assert!(lines[0].contains("\"rec\": \"Decision\""));
        assert!(lines[1].contains("\"kind\": \"snap_pin\""));
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
    }

    #[test]
    fn life_of_filters_and_formats() {
        let tracer = Tracer::new(2, 64);
        tracer.record(
            0,
            EventKind::PhaseEnter {
                txn: 9,
                phase: "AwaitingPrepareAcks",
            },
        );
        tracer.record(1, EventKind::VoteYes { txn: 9 });
        tracer.record(1, EventKind::VoteYes { txn: 10 });
        let view = tracer.collect().life_of(9);
        assert!(view.contains("AwaitingPrepareAcks"));
        assert_eq!(view.lines().count(), 2, "only txn 9's events");
        assert!(tracer.collect().life_of(777).contains("no events"));
    }

    #[test]
    fn doc_hash_is_stable_and_distinct() {
        assert_eq!(doc_hash("d"), doc_hash("d"));
        assert_ne!(doc_hash("d"), doc_hash("e"));
    }
}
