//! Size-balanced fragmentation and site allocation (paper §3.2, Fig. 8).
//!
//! "To carry out the experiments in partial replication the database was
//! fragmented according to the approach proposed by [Kurita et al.]. In
//! this approach the data is fragmented considering the structure and
//! size of the document, so that each generated fragment has a similar
//! size. The fragmentation approach used in this work makes all sites
//! have similar volumes of data."
//!
//! [`fragment_doc`] splits an XMark document into `n` fragments: each
//! fragment keeps the full `site` skeleton (so every query path remains
//! valid against every fragment) and receives a greedy size-balanced
//! subset of each section's entities. [`allocate`] then produces the
//! Fig. 8 placement: **partial** (fragment *i* on site *i*) or **total**
//! (every fragment on every site).

use crate::generator::XmarkDoc;
use dtx_net::SiteId;
use dtx_xml::{Document, NodeId};

/// The logical document name all experiment operations target; sites hold
/// either a fragment (partial replication) or a full copy (total
/// replication) under this name.
pub const LOGICAL_DOC: &str = "xmark";

/// How fragments are replicated across sites (§3.2.1 compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationMode {
    /// Each fragment lives on exactly one site (similar data volume per
    /// site).
    Partial,
    /// Every fragment is copied to every site.
    Total,
}

impl ReplicationMode {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            ReplicationMode::Partial => "partial",
            ReplicationMode::Total => "total",
        }
    }
}

/// One fragment: a standalone well-formed document plus its entity ids.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Fragment/document name ("part0", "part1", ...).
    pub name: String,
    /// Serialized XML.
    pub xml: String,
    /// Person ids present in this fragment.
    pub person_ids: Vec<u64>,
    /// Open-auction ids present in this fragment.
    pub open_auction_ids: Vec<u64>,
    /// Item ids present in this fragment.
    pub item_ids: Vec<u64>,
    /// Category ids present in this fragment.
    pub category_ids: Vec<u64>,
}

/// The result of fragmentation.
#[derive(Debug, Clone)]
pub struct Fragmented {
    /// The fragments, in name order.
    pub fragments: Vec<Fragment>,
}

impl Fragmented {
    /// Total serialized bytes across fragments.
    pub fn total_bytes(&self) -> usize {
        self.fragments.iter().map(|f| f.xml.len()).sum()
    }

    /// Max/min fragment size ratio (balance quality; 1.0 is perfect).
    pub fn balance_ratio(&self) -> f64 {
        let max = self
            .fragments
            .iter()
            .map(|f| f.xml.len())
            .max()
            .unwrap_or(1);
        let min = self
            .fragments
            .iter()
            .map(|f| f.xml.len())
            .min()
            .unwrap_or(1);
        max as f64 / min.max(1) as f64
    }
}

/// A placement plan for the logical document (paper Fig. 8).
///
/// Under **partial** replication each site holds one fragment of
/// [`LOGICAL_DOC`]; under **total** replication each site holds a full
/// copy of the base.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// `(site, xml held at that site)` pairs.
    pub parts: Vec<(SiteId, String)>,
    /// The replication mode this allocation implements.
    pub mode: ReplicationMode,
}

impl Allocation {
    /// Renders the plan in the style of the paper's Fig. 8.
    pub fn render(&self) -> String {
        let mut out = format!("replication: {}\n", self.mode.name());
        for (site, xml) in &self.parts {
            let kind = match self.mode {
                ReplicationMode::Partial => "fragment",
                ReplicationMode::Total => "full copy",
            };
            out.push_str(&format!(
                "  {site}: {LOGICAL_DOC} {kind} ({} KiB)\n",
                xml.len() / 1024
            ));
        }
        out
    }
}

/// Splits `doc` into `n` similar-size fragments.
pub fn fragment_doc(doc: &XmarkDoc, n: usize) -> Fragmented {
    assert!(n >= 1, "need at least one fragment");
    let parsed = Document::parse(&doc.xml).expect("valid XMark XML");
    let root = parsed.root();

    // Per-fragment accumulators: one XML buffer per section.
    let mut frags: Vec<FragBuild> = (0..n).map(|_| FragBuild::default()).collect();
    let sections = parsed.children(root).expect("root children").to_vec();
    for section in sections {
        let sec_label = parsed.label_str(section).unwrap_or("").to_owned();
        match sec_label.as_str() {
            "regions" => {
                // Keep region sub-elements; distribute their items.
                for region in parsed.children(section).expect("regions").to_vec() {
                    let region_label = parsed.label_str(region).unwrap_or("").to_owned();
                    distribute_children(
                        &parsed,
                        region,
                        &mut frags,
                        |fb| fb.region_bufs.entry(region_label.clone()).or_default(),
                        |fb, id| fb.item_ids.push(id),
                    );
                }
            }
            "people" => distribute_children(
                &parsed,
                section,
                &mut frags,
                |fb| &mut fb.people,
                |fb, id| fb.person_ids.push(id),
            ),
            "open_auctions" => distribute_children(
                &parsed,
                section,
                &mut frags,
                |fb| &mut fb.open_auctions,
                |fb, id| fb.open_auction_ids.push(id),
            ),
            "closed_auctions" => distribute_children(
                &parsed,
                section,
                &mut frags,
                |fb| &mut fb.closed_auctions,
                |_fb, _| {},
            ),
            "categories" => distribute_children(
                &parsed,
                section,
                &mut frags,
                |fb| &mut fb.categories,
                |fb, id| fb.category_ids.push(id),
            ),
            _ => {}
        }
    }

    let fragments = frags
        .into_iter()
        .enumerate()
        .map(|(i, fb)| fb.finish(format!("part{i}")))
        .collect();
    Fragmented { fragments }
}

#[derive(Default)]
struct FragBuild {
    bytes: usize,
    region_bufs: std::collections::BTreeMap<String, String>,
    categories: String,
    people: String,
    open_auctions: String,
    closed_auctions: String,
    person_ids: Vec<u64>,
    open_auction_ids: Vec<u64>,
    item_ids: Vec<u64>,
    category_ids: Vec<u64>,
}

impl FragBuild {
    fn finish(self, name: String) -> Fragment {
        let mut xml = String::with_capacity(self.bytes + 256);
        xml.push_str("<site><regions>");
        // Always emit all six regions so fragment schemas are identical.
        for region in [
            "africa",
            "asia",
            "australia",
            "europe",
            "namerica",
            "samerica",
        ] {
            xml.push_str(&format!("<{region}>"));
            if let Some(buf) = self.region_bufs.get(region) {
                xml.push_str(buf);
            }
            xml.push_str(&format!("</{region}>"));
        }
        xml.push_str("</regions><categories>");
        xml.push_str(&self.categories);
        xml.push_str("</categories><people>");
        xml.push_str(&self.people);
        xml.push_str("</people><open_auctions>");
        xml.push_str(&self.open_auctions);
        xml.push_str("</open_auctions><closed_auctions>");
        xml.push_str(&self.closed_auctions);
        xml.push_str("</closed_auctions></site>");
        Fragment {
            name,
            xml,
            person_ids: self.person_ids,
            open_auction_ids: self.open_auction_ids,
            item_ids: self.item_ids,
            category_ids: self.category_ids,
        }
    }
}

/// Greedy size-balancing: each child subtree goes to the currently
/// smallest fragment ("each generated fragment has a similar size").
fn distribute_children(
    doc: &Document,
    parent: NodeId,
    frags: &mut [FragBuild],
    buf_of: impl Fn(&mut FragBuild) -> &mut String,
    note_id: impl Fn(&mut FragBuild, u64),
) {
    let ser = dtx_xml::Serializer::new(doc);
    for &child in doc.children(parent).expect("children") {
        let xml = ser.subtree(child);
        // Smallest-first greedy bin packing.
        let (idx, _) = frags
            .iter()
            .enumerate()
            .min_by_key(|(_, fb)| fb.bytes)
            .expect("at least one fragment");
        let fb = &mut frags[idx];
        fb.bytes += xml.len();
        if let Some(id) = entity_id(doc, child) {
            note_id(fb, id);
        }
        buf_of(fb).push_str(&xml);
    }
}

fn entity_id(doc: &Document, node: NodeId) -> Option<u64> {
    let id_sym = doc.interner().get("id")?;
    let id_node = doc.child_by_label(node, id_sym).ok()??;
    doc.text_of(id_node).ok()?.trim().parse().ok()
}

/// Loads an [`Allocation`] into a cluster: fragments register the logical
/// document as *fragmented*, full copies as *replicated*.
pub fn load_allocation(cluster: &dtx_core::Cluster, alloc: &Allocation) -> Result<(), String> {
    match alloc.mode {
        ReplicationMode::Partial => cluster.load_fragments(LOGICAL_DOC, &alloc.parts),
        ReplicationMode::Total => {
            let sites: Vec<SiteId> = alloc.parts.iter().map(|(s, _)| *s).collect();
            let xml = &alloc.parts[0].1;
            cluster.load_document(LOGICAL_DOC, xml, &sites)
        }
    }
}

/// Produces the Fig. 8-style placement over `n_sites` sites: the
/// fragments one-per-site under partial replication, or the full base
/// everywhere under total replication. (`fragments` must have exactly
/// `n_sites` entries for partial replication.)
pub fn allocate(
    base: &XmarkDoc,
    fragments: &Fragmented,
    n_sites: u16,
    mode: ReplicationMode,
) -> Allocation {
    let parts = match mode {
        ReplicationMode::Partial => fragments
            .fragments
            .iter()
            .enumerate()
            .map(|(i, f)| (SiteId((i as u16) % n_sites), f.xml.clone()))
            .collect(),
        ReplicationMode::Total => (0..n_sites)
            .map(|i| (SiteId(i), base.xml.clone()))
            .collect(),
    };
    Allocation { parts, mode }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, XmarkConfig};
    use dtx_xpath::{eval, Query};

    fn base() -> XmarkDoc {
        generate(XmarkConfig::sized(120_000, 11))
    }

    #[test]
    fn fragments_are_well_formed_and_schema_complete() {
        let f = fragment_doc(&base(), 4);
        assert_eq!(f.fragments.len(), 4);
        for frag in &f.fragments {
            let doc = Document::parse(&frag.xml).expect("well-formed fragment");
            doc.check_integrity().unwrap();
            // Full skeleton present even if a section is empty.
            for path in [
                "/site/regions/africa",
                "/site/people",
                "/site/open_auctions",
            ] {
                assert_eq!(
                    eval(&doc, &Query::parse(path).unwrap()).len(),
                    1,
                    "{path} missing in {}",
                    frag.name
                );
            }
        }
    }

    #[test]
    fn fragments_have_similar_sizes() {
        let f = fragment_doc(&base(), 4);
        assert!(
            f.balance_ratio() < 1.35,
            "balance ratio {}",
            f.balance_ratio()
        );
    }

    #[test]
    fn no_entity_lost_or_duplicated() {
        let gen = base();
        let f = fragment_doc(&gen, 3);
        let mut person_ids: Vec<u64> = f
            .fragments
            .iter()
            .flat_map(|fr| fr.person_ids.iter().copied())
            .collect();
        person_ids.sort();
        let mut expected = gen.person_ids.clone();
        expected.sort();
        assert_eq!(person_ids, expected);
        let mut auction_ids: Vec<u64> = f
            .fragments
            .iter()
            .flat_map(|fr| fr.open_auction_ids.iter().copied())
            .collect();
        auction_ids.sort();
        let mut expected = gen.open_auction_ids.clone();
        expected.sort();
        assert_eq!(auction_ids, expected);
    }

    #[test]
    fn single_fragment_keeps_everything() {
        let gen = base();
        let f = fragment_doc(&gen, 1);
        let doc = Document::parse(&f.fragments[0].xml).unwrap();
        assert_eq!(
            eval(&doc, &Query::parse("/site/people/person").unwrap()).len(),
            gen.person_ids.len()
        );
    }

    #[test]
    fn partial_allocation_spreads_fragments() {
        let doc = base();
        let f = fragment_doc(&doc, 4);
        let a = allocate(&doc, &f, 4, ReplicationMode::Partial);
        assert_eq!(a.parts.len(), 4);
        for (i, (site, xml)) in a.parts.iter().enumerate() {
            assert_eq!(*site, SiteId(i as u16));
            assert_eq!(xml, &f.fragments[i].xml);
        }
        let rendered = a.render();
        assert!(rendered.contains("partial"));
        assert!(rendered.contains("fragment"));
    }

    #[test]
    fn total_allocation_copies_full_base_everywhere() {
        let doc = base();
        let f = fragment_doc(&doc, 2);
        let a = allocate(&doc, &f, 3, ReplicationMode::Total);
        assert_eq!(a.parts.len(), 3);
        for (_, xml) in &a.parts {
            assert_eq!(xml, &doc.xml);
        }
        assert!(a.render().contains("full copy"));
    }

    #[test]
    fn category_ids_tracked_per_fragment() {
        let doc = base();
        let f = fragment_doc(&doc, 3);
        let mut all: Vec<u64> = f
            .fragments
            .iter()
            .flat_map(|fr| fr.category_ids.iter().copied())
            .collect();
        all.sort();
        let mut expected = doc.category_ids.clone();
        expected.sort();
        assert_eq!(all, expected);
    }
}
