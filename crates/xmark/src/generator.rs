//! XMark-like auction-site document generator.
//!
//! Generates the schema of the paper's Fig. 7 / the XMark benchmark:
//! a `site` with `regions` (six continents of `item`s), `categories`,
//! `people` (`person`s with profiles) and `open_auctions` /
//! `closed_auctions`. Entity counts follow XMark's ratios and are scaled
//! to an approximate **target byte size**, so experiments can sweep the
//! base size exactly like §3.2.3 ("The size of the base varied between
//! 50 MB and 200 MB" — we sweep a scaled-down range, see EXPERIMENTS.md).
//!
//! Every entity carries a numeric `<id>` child (the paper's §2.4 example
//! uses the same convention) so workload predicates like
//! `person[id=42]` are expressible in the DTX XPath subset.

use dtx_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Approximate serialized size to generate, in bytes.
    pub target_bytes: usize,
    /// PRNG seed (same seed ⇒ identical document).
    pub seed: u64,
}

impl XmarkConfig {
    /// Config for a document of roughly `target_bytes` bytes.
    pub fn sized(target_bytes: usize, seed: u64) -> Self {
        XmarkConfig { target_bytes, seed }
    }
}

/// A generated document plus its entity-id manifest (used by the workload
/// generator to build predicates that actually select something).
#[derive(Debug, Clone)]
pub struct XmarkDoc {
    /// The serialized XML.
    pub xml: String,
    /// Ids of generated persons.
    pub person_ids: Vec<u64>,
    /// Ids of generated items (across all regions).
    pub item_ids: Vec<u64>,
    /// Ids of generated open auctions.
    pub open_auction_ids: Vec<u64>,
    /// Ids of generated closed auctions.
    pub closed_auction_ids: Vec<u64>,
    /// Ids of generated categories.
    pub category_ids: Vec<u64>,
}

const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const FIRST_NAMES: [&str; 12] = [
    "Ana", "Bruno", "Caio", "Dora", "Enzo", "Flora", "Gil", "Helena", "Ivo", "Julia", "Kleber",
    "Lia",
];
const LAST_NAMES: [&str; 10] = [
    "Silva", "Souza", "Moreira", "Machado", "Costa", "Lima", "Alves", "Rocha", "Dias", "Nunes",
];
const CITIES: [&str; 8] = [
    "Fortaleza",
    "Recife",
    "Natal",
    "Salvador",
    "Belem",
    "Manaus",
    "Curitiba",
    "Porto",
];
const WORDS: [&str; 16] = [
    "auction",
    "vintage",
    "rare",
    "boxed",
    "mint",
    "classic",
    "signed",
    "limited",
    "edition",
    "antique",
    "restored",
    "original",
    "sealed",
    "imported",
    "handmade",
    "certified",
];

/// Average serialized bytes per entity, measured empirically from the
/// templates below; used to convert a byte target into entity counts.
const BYTES_PER_UNIT: f64 = 330.0;

/// Generates an XMark-like document of approximately
/// [`XmarkConfig::target_bytes`] bytes.
pub fn generate(config: XmarkConfig) -> XmarkDoc {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // XMark f=1 ratios: items 21750 : persons 25500 : open 12000 :
    // closed 9750 : categories 1000. Normalized per "unit".
    let units = (config.target_bytes as f64 / BYTES_PER_UNIT).max(2.0);
    let n_items = ((units * 0.31) as usize).max(2);
    let n_persons = ((units * 0.36) as usize).max(2);
    let n_open = ((units * 0.17) as usize).max(1);
    let n_closed = ((units * 0.14) as usize).max(1);
    let n_categories = ((units * 0.02) as usize).max(1);

    let mut next_id: u64 = 1;
    let mut take_id = |n: usize| -> Vec<u64> {
        let ids: Vec<u64> = (next_id..next_id + n as u64).collect();
        next_id += n as u64;
        ids
    };
    let category_ids = take_id(n_categories);
    let item_ids = take_id(n_items);
    let person_ids = take_id(n_persons);
    let open_auction_ids = take_id(n_open);
    let closed_auction_ids = take_id(n_closed);

    let mut xml = String::with_capacity(config.target_bytes + 4096);
    xml.push_str("<site>");

    // regions
    xml.push_str("<regions>");
    for (r, region) in REGIONS.iter().enumerate() {
        xml.push_str(&format!("<{region}>"));
        for (i, &id) in item_ids.iter().enumerate() {
            if i % REGIONS.len() == r {
                push_item(&mut xml, id, &category_ids, &mut rng);
            }
        }
        xml.push_str(&format!("</{region}>"));
    }
    xml.push_str("</regions>");

    // categories
    xml.push_str("<categories>");
    for &id in &category_ids {
        xml.push_str(&format!(
            "<category><id>{id}</id><name>{} {}</name><description>{}</description></category>",
            pick(&WORDS, &mut rng),
            pick(&WORDS, &mut rng),
            sentence(&mut rng, 6),
        ));
    }
    xml.push_str("</categories>");

    // people
    xml.push_str("<people>");
    for &id in &person_ids {
        push_person(&mut xml, id, &mut rng);
    }
    xml.push_str("</people>");

    // open_auctions
    xml.push_str("<open_auctions>");
    for &id in &open_auction_ids {
        push_open_auction(&mut xml, id, &item_ids, &person_ids, &mut rng);
    }
    xml.push_str("</open_auctions>");

    // closed_auctions
    xml.push_str("<closed_auctions>");
    for &id in &closed_auction_ids {
        let seller = pick(&person_ids, &mut rng);
        let buyer = pick(&person_ids, &mut rng);
        let item = pick(&item_ids, &mut rng);
        xml.push_str(&format!(
            "<closed_auction><id>{id}</id><seller>{seller}</seller><buyer>{buyer}</buyer>\
             <itemref>{item}</itemref><price>{}.{:02}</price><date>2009-{:02}-{:02}</date>\
             <quantity>{}</quantity><annotation>{}</annotation></closed_auction>",
            rng.gen_range(5..500),
            rng.gen_range(0..100),
            rng.gen_range(1..13),
            rng.gen_range(1..29),
            rng.gen_range(1..5),
            sentence(&mut rng, 8),
        ));
    }
    xml.push_str("</closed_auctions>");

    xml.push_str("</site>");
    XmarkDoc {
        xml,
        person_ids,
        item_ids,
        open_auction_ids,
        closed_auction_ids,
        category_ids,
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

fn sentence(rng: &mut StdRng, n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

fn push_item(xml: &mut String, id: u64, categories: &[u64], rng: &mut StdRng) {
    let cat = pick(categories, rng);
    xml.push_str(&format!(
        "<item><id>{id}</id><name>{} {}</name><location>{}</location><quantity>{}</quantity>\
         <payment>Creditcard</payment><description>{}</description><shipping>Will ship \
         internationally</shipping><incategory>{cat}</incategory></item>",
        pick(&WORDS, rng),
        pick(&WORDS, rng),
        pick(&CITIES, rng),
        rng.gen_range(1..10),
        sentence(rng, 10),
    ));
}

fn push_person(xml: &mut String, id: u64, rng: &mut StdRng) {
    let name = format!("{} {}", pick(&FIRST_NAMES, rng), pick(&LAST_NAMES, rng));
    let email = format!("p{id}@example.org");
    let age = rng.gen_range(18..80);
    xml.push_str(&format!(
        "<person><id>{id}</id><name>{name}</name><emailaddress>{email}</emailaddress>\
         <phone>+55 85 9{:07}</phone><address><street>{} St</street><city>{}</city>\
         <country>Brazil</country><zipcode>{}</zipcode></address>\
         <profile><interest>{}</interest><education>Graduate</education><age>{age}</age>\
         <income>{}</income></profile></person>",
        rng.gen_range(0..9_999_999),
        pick(&WORDS, rng),
        pick(&CITIES, rng),
        rng.gen_range(10_000..99_999),
        pick(&WORDS, rng),
        rng.gen_range(20_000..120_000),
    ));
}

fn push_open_auction(xml: &mut String, id: u64, items: &[u64], persons: &[u64], rng: &mut StdRng) {
    let item = pick(items, rng);
    let seller = pick(persons, rng);
    let n_bidders = rng.gen_range(1..4);
    let initial = rng.gen_range(1..100);
    xml.push_str(&format!(
        "<open_auction><id>{id}</id><initial>{initial}.00</initial><reserve>{}.00</reserve>",
        initial + rng.gen_range(1..50),
    ));
    let mut current = initial as f64;
    for _ in 0..n_bidders {
        let bidder = pick(persons, rng);
        let increase = rng.gen_range(1..20) as f64;
        current += increase;
        xml.push_str(&format!(
            "<bidder><date>2009-{:02}-{:02}</date><personref>{bidder}</personref>\
             <increase>{increase:.2}</increase></bidder>",
            rng.gen_range(1..13),
            rng.gen_range(1..29),
        ));
    }
    xml.push_str(&format!(
        "<current>{current:.2}</current><itemref>{item}</itemref><seller>{seller}</seller>\
         <quantity>1</quantity><type>Regular</type><annotation>{}</annotation></open_auction>",
        sentence(rng, 6),
    ));
}

impl XmarkDoc {
    /// Parses the generated XML (convenience for tests).
    pub fn parse(&self) -> Document {
        Document::parse(&self.xml).expect("generator emits well-formed XML")
    }

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.xml.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xpath::{eval, Query};

    #[test]
    fn generates_well_formed_xml_of_requested_size() {
        let doc = generate(XmarkConfig::sized(200_000, 42));
        let parsed = doc.parse();
        parsed.check_integrity().unwrap();
        // Within 40 % of the target (entity granularity causes slack).
        let sz = doc.byte_size() as f64;
        assert!(
            sz > 120_000.0 && sz < 280_000.0,
            "size {sz} not near target 200000"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(XmarkConfig::sized(50_000, 7));
        let b = generate(XmarkConfig::sized(50_000, 7));
        assert_eq!(a.xml, b.xml);
        let c = generate(XmarkConfig::sized(50_000, 8));
        assert_ne!(a.xml, c.xml);
    }

    #[test]
    fn schema_sections_present() {
        let doc = generate(XmarkConfig::sized(60_000, 1)).parse();
        let q = |s: &str| eval(&doc, &Query::parse(s).unwrap()).len();
        assert_eq!(q("/site"), 1);
        assert!(q("/site/regions/*") >= 6);
        assert!(q("/site/people/person") >= 2);
        assert!(q("/site/open_auctions/open_auction") >= 1);
        assert!(q("/site/closed_auctions/closed_auction") >= 1);
        assert!(q("/site/categories/category") >= 1);
        assert!(q("//item") >= 2);
    }

    #[test]
    fn manifest_ids_resolve_in_document() {
        let gen = generate(XmarkConfig::sized(60_000, 3));
        let doc = gen.parse();
        let pid = gen.person_ids[0];
        let hits = eval(
            &doc,
            &Query::parse(&format!("/site/people/person[id={pid}]")).unwrap(),
        );
        assert_eq!(hits.len(), 1, "person id {pid} must be unique and findable");
        let aid = gen.open_auction_ids[0];
        let hits = eval(
            &doc,
            &Query::parse(&format!("/site/open_auctions/open_auction[id={aid}]")).unwrap(),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn ids_globally_unique() {
        let gen = generate(XmarkConfig::sized(40_000, 5));
        let mut all: Vec<u64> = gen
            .person_ids
            .iter()
            .chain(&gen.item_ids)
            .chain(&gen.open_auction_ids)
            .chain(&gen.closed_auction_ids)
            .chain(&gen.category_ids)
            .copied()
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn size_scales_linearly() {
        let small = generate(XmarkConfig::sized(50_000, 9)).byte_size();
        let large = generate(XmarkConfig::sized(200_000, 9)).byte_size();
        let ratio = large as f64 / small as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }
}
