//! XMark-like auction-site document generator — streaming.
//!
//! Generates the schema of the paper's Fig. 7 / the XMark benchmark:
//! a `site` with `regions` (six continents of `item`s), `categories`,
//! `people` (`person`s with profiles) and `open_auctions` /
//! `closed_auctions`. Entity counts follow XMark's ratios and are scaled
//! to an approximate **target byte size**, so experiments can sweep the
//! base size exactly like §3.2.3 ("The size of the base varied between
//! 50 MB and 200 MB" — see EXPERIMENTS.md for the scale-factor mapping).
//!
//! The generator is **event-based**: [`emit`] streams
//! [`XmlEvent`]s entity by entity into any [`EventSink`] — a serializer,
//! a tree builder, a DataGuide builder, a fragment splitter — without
//! ever holding the whole base in memory. Its transient state is one
//! entity's worth of strings, so paper-scale bases (40–200 MB) generate
//! in O(1) memory beyond whatever the sink keeps. [`generate`] is the
//! backward-compatible convenience that streams into an
//! [`dtx_xml::XmlWriter`] and returns the serialized document.
//!
//! Every entity carries a numeric `<id>` child (the paper's §2.4 example
//! uses the same convention) so workload predicates like
//! `person[id=42]` are expressible in the DTX XPath subset. Same seed ⇒
//! identical event stream.

use dtx_xml::stream::{EventSink, XmlEvent, XmlWriter};
use dtx_xml::{Document, XmlResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Approximate serialized size to generate, in bytes.
    pub target_bytes: usize,
    /// PRNG seed (same seed ⇒ identical document).
    pub seed: u64,
}

impl XmarkConfig {
    /// Config for a document of roughly `target_bytes` bytes.
    pub fn sized(target_bytes: usize, seed: u64) -> Self {
        XmarkConfig { target_bytes, seed }
    }
}

/// The entity-id manifest of a generated base: which ids exist, per
/// entity kind. The workload generator draws predicates from this so
/// queries select entities that actually exist. Size is O(entities) ids,
/// not O(bytes) — the manifest is the only thing [`emit`] accumulates.
#[derive(Debug, Clone, Default)]
pub struct XmarkManifest {
    /// Ids of generated persons.
    pub person_ids: Vec<u64>,
    /// Ids of generated items (across all regions).
    pub item_ids: Vec<u64>,
    /// Ids of generated open auctions.
    pub open_auction_ids: Vec<u64>,
    /// Ids of generated closed auctions.
    pub closed_auction_ids: Vec<u64>,
    /// Ids of generated categories.
    pub category_ids: Vec<u64>,
}

/// A generated document plus its entity-id manifest (the materialized
/// form; the streaming paths use [`emit`] directly).
#[derive(Debug, Clone)]
pub struct XmarkDoc {
    /// The serialized XML.
    pub xml: String,
    /// Ids of generated persons.
    pub person_ids: Vec<u64>,
    /// Ids of generated items (across all regions).
    pub item_ids: Vec<u64>,
    /// Ids of generated open auctions.
    pub open_auction_ids: Vec<u64>,
    /// Ids of generated closed auctions.
    pub closed_auction_ids: Vec<u64>,
    /// Ids of generated categories.
    pub category_ids: Vec<u64>,
}

/// The six region elements, in document order.
pub const REGIONS: [&str; 6] = [
    "africa",
    "asia",
    "australia",
    "europe",
    "namerica",
    "samerica",
];

const FIRST_NAMES: [&str; 12] = [
    "Ana", "Bruno", "Caio", "Dora", "Enzo", "Flora", "Gil", "Helena", "Ivo", "Julia", "Kleber",
    "Lia",
];
const LAST_NAMES: [&str; 10] = [
    "Silva", "Souza", "Moreira", "Machado", "Costa", "Lima", "Alves", "Rocha", "Dias", "Nunes",
];
const CITIES: [&str; 8] = [
    "Fortaleza",
    "Recife",
    "Natal",
    "Salvador",
    "Belem",
    "Manaus",
    "Curitiba",
    "Porto",
];
const WORDS: [&str; 16] = [
    "auction",
    "vintage",
    "rare",
    "boxed",
    "mint",
    "classic",
    "signed",
    "limited",
    "edition",
    "antique",
    "restored",
    "original",
    "sealed",
    "imported",
    "handmade",
    "certified",
];

/// Average serialized bytes per entity, measured empirically from the
/// templates below; used to convert a byte target into entity counts.
const BYTES_PER_UNIT: f64 = 330.0;

// Small event-emission helpers (each call is O(its arguments)).

fn start(sink: &mut impl EventSink, name: &str) -> XmlResult<()> {
    sink.event(&XmlEvent::start(name.to_owned()))
}

fn end(sink: &mut impl EventSink, name: &str) -> XmlResult<()> {
    sink.event(&XmlEvent::end(name.to_owned()))
}

fn leaf(sink: &mut impl EventSink, name: &str, value: impl ToString) -> XmlResult<()> {
    start(sink, name)?;
    sink.event(&XmlEvent::text(value.to_string()))?;
    end(sink, name)
}

/// Streams an XMark-like base of approximately
/// [`XmarkConfig::target_bytes`] serialized bytes into `sink`, entity by
/// entity, and returns the id manifest. Never materializes the document:
/// peak transient memory is one entity.
pub fn emit<S: EventSink>(config: XmarkConfig, sink: &mut S) -> XmlResult<XmarkManifest> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // XMark f=1 ratios: items 21750 : persons 25500 : open 12000 :
    // closed 9750 : categories 1000. Normalized per "unit".
    let units = (config.target_bytes as f64 / BYTES_PER_UNIT).max(2.0);
    let n_items = ((units * 0.31) as usize).max(2);
    let n_persons = ((units * 0.36) as usize).max(2);
    let n_open = ((units * 0.17) as usize).max(1);
    let n_closed = ((units * 0.14) as usize).max(1);
    let n_categories = ((units * 0.02) as usize).max(1);

    let mut next_id: u64 = 1;
    let mut take_id = |n: usize| -> Vec<u64> {
        let ids: Vec<u64> = (next_id..next_id + n as u64).collect();
        next_id += n as u64;
        ids
    };
    let manifest = XmarkManifest {
        category_ids: take_id(n_categories),
        item_ids: take_id(n_items),
        person_ids: take_id(n_persons),
        open_auction_ids: take_id(n_open),
        closed_auction_ids: take_id(n_closed),
    };

    start(sink, "site")?;

    // regions
    start(sink, "regions")?;
    for (r, region) in REGIONS.iter().enumerate() {
        start(sink, region)?;
        for (i, &id) in manifest.item_ids.iter().enumerate() {
            if i % REGIONS.len() == r {
                emit_item(sink, id, &manifest.category_ids, &mut rng)?;
            }
        }
        end(sink, region)?;
    }
    end(sink, "regions")?;

    // categories
    start(sink, "categories")?;
    for &id in &manifest.category_ids {
        start(sink, "category")?;
        leaf(sink, "id", id)?;
        leaf(
            sink,
            "name",
            format!("{} {}", pick(&WORDS, &mut rng), pick(&WORDS, &mut rng)),
        )?;
        leaf(sink, "description", sentence(&mut rng, 6))?;
        end(sink, "category")?;
    }
    end(sink, "categories")?;

    // people
    start(sink, "people")?;
    for &id in &manifest.person_ids {
        emit_person(sink, id, &mut rng)?;
    }
    end(sink, "people")?;

    // open_auctions
    start(sink, "open_auctions")?;
    for &id in &manifest.open_auction_ids {
        emit_open_auction(sink, id, &manifest.item_ids, &manifest.person_ids, &mut rng)?;
    }
    end(sink, "open_auctions")?;

    // closed_auctions
    start(sink, "closed_auctions")?;
    for &id in &manifest.closed_auction_ids {
        let seller = *pick(&manifest.person_ids, &mut rng);
        let buyer = *pick(&manifest.person_ids, &mut rng);
        let item = *pick(&manifest.item_ids, &mut rng);
        start(sink, "closed_auction")?;
        leaf(sink, "id", id)?;
        leaf(sink, "seller", seller)?;
        leaf(sink, "buyer", buyer)?;
        leaf(sink, "itemref", item)?;
        leaf(
            sink,
            "price",
            format!("{}.{:02}", rng.gen_range(5..500), rng.gen_range(0..100)),
        )?;
        leaf(
            sink,
            "date",
            format!(
                "2009-{:02}-{:02}",
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ),
        )?;
        leaf(sink, "quantity", rng.gen_range(1..5))?;
        leaf(sink, "annotation", sentence(&mut rng, 8))?;
        end(sink, "closed_auction")?;
    }
    end(sink, "closed_auctions")?;

    end(sink, "site")?;
    Ok(manifest)
}

/// Generates an XMark-like document of approximately
/// [`XmarkConfig::target_bytes`] bytes by streaming [`emit`] into an
/// [`XmlWriter`].
pub fn generate(config: XmarkConfig) -> XmarkDoc {
    let mut writer = XmlWriter::with_capacity(config.target_bytes + 4096);
    let manifest = emit(config, &mut writer).expect("generator emits well-formed events");
    XmarkDoc {
        xml: writer.finish(),
        person_ids: manifest.person_ids,
        item_ids: manifest.item_ids,
        open_auction_ids: manifest.open_auction_ids,
        closed_auction_ids: manifest.closed_auction_ids,
        category_ids: manifest.category_ids,
    }
}

fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

fn sentence(rng: &mut StdRng, n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

fn emit_item(
    sink: &mut impl EventSink,
    id: u64,
    categories: &[u64],
    rng: &mut StdRng,
) -> XmlResult<()> {
    let cat = *pick(categories, rng);
    start(sink, "item")?;
    leaf(sink, "id", id)?;
    leaf(
        sink,
        "name",
        format!("{} {}", pick(&WORDS, rng), pick(&WORDS, rng)),
    )?;
    leaf(sink, "location", pick(&CITIES, rng))?;
    leaf(sink, "quantity", rng.gen_range(1..10))?;
    leaf(sink, "payment", "Creditcard")?;
    leaf(sink, "description", sentence(rng, 10))?;
    leaf(sink, "shipping", "Will ship internationally")?;
    leaf(sink, "incategory", cat)?;
    end(sink, "item")
}

fn emit_person(sink: &mut impl EventSink, id: u64, rng: &mut StdRng) -> XmlResult<()> {
    let name = format!("{} {}", pick(&FIRST_NAMES, rng), pick(&LAST_NAMES, rng));
    let email = format!("p{id}@example.org");
    let age = rng.gen_range(18..80);
    start(sink, "person")?;
    leaf(sink, "id", id)?;
    leaf(sink, "name", name)?;
    leaf(sink, "emailaddress", email)?;
    leaf(
        sink,
        "phone",
        format!("+55 85 9{:07}", rng.gen_range(0..9_999_999)),
    )?;
    start(sink, "address")?;
    leaf(sink, "street", format!("{} St", pick(&WORDS, rng)))?;
    leaf(sink, "city", pick(&CITIES, rng))?;
    leaf(sink, "country", "Brazil")?;
    leaf(sink, "zipcode", rng.gen_range(10_000..99_999))?;
    end(sink, "address")?;
    start(sink, "profile")?;
    leaf(sink, "interest", pick(&WORDS, rng))?;
    leaf(sink, "education", "Graduate")?;
    leaf(sink, "age", age)?;
    leaf(sink, "income", rng.gen_range(20_000..120_000))?;
    end(sink, "profile")?;
    end(sink, "person")
}

fn emit_open_auction(
    sink: &mut impl EventSink,
    id: u64,
    items: &[u64],
    persons: &[u64],
    rng: &mut StdRng,
) -> XmlResult<()> {
    let item = *pick(items, rng);
    let seller = *pick(persons, rng);
    let n_bidders = rng.gen_range(1..4);
    let initial = rng.gen_range(1..100);
    start(sink, "open_auction")?;
    leaf(sink, "id", id)?;
    leaf(sink, "initial", format!("{initial}.00"))?;
    leaf(
        sink,
        "reserve",
        format!("{}.00", initial + rng.gen_range(1..50)),
    )?;
    let mut current = initial as f64;
    for _ in 0..n_bidders {
        let bidder = *pick(persons, rng);
        let increase = rng.gen_range(1..20) as f64;
        current += increase;
        start(sink, "bidder")?;
        leaf(
            sink,
            "date",
            format!(
                "2009-{:02}-{:02}",
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ),
        )?;
        leaf(sink, "personref", bidder)?;
        leaf(sink, "increase", format!("{increase:.2}"))?;
        end(sink, "bidder")?;
    }
    leaf(sink, "current", format!("{current:.2}"))?;
    leaf(sink, "itemref", item)?;
    leaf(sink, "seller", seller)?;
    leaf(sink, "quantity", 1)?;
    leaf(sink, "type", "Regular")?;
    leaf(sink, "annotation", sentence(rng, 6))?;
    end(sink, "open_auction")
}

impl XmarkDoc {
    /// Parses the generated XML (convenience for tests).
    pub fn parse(&self) -> Document {
        Document::parse(&self.xml).expect("generator emits well-formed XML")
    }

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.xml.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::stream::TreeBuilder;
    use dtx_xpath::{eval, Query};

    #[test]
    fn generates_well_formed_xml_of_requested_size() {
        let doc = generate(XmarkConfig::sized(200_000, 42));
        let parsed = doc.parse();
        parsed.check_integrity().unwrap();
        // Within 40 % of the target (entity granularity causes slack).
        let sz = doc.byte_size() as f64;
        assert!(
            sz > 120_000.0 && sz < 280_000.0,
            "size {sz} not near target 200000"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(XmarkConfig::sized(50_000, 7));
        let b = generate(XmarkConfig::sized(50_000, 7));
        assert_eq!(a.xml, b.xml);
        let c = generate(XmarkConfig::sized(50_000, 8));
        assert_ne!(a.xml, c.xml);
    }

    #[test]
    fn schema_sections_present() {
        let doc = generate(XmarkConfig::sized(60_000, 1)).parse();
        let q = |s: &str| eval(&doc, &Query::parse(s).unwrap()).len();
        assert_eq!(q("/site"), 1);
        assert!(q("/site/regions/*") >= 6);
        assert!(q("/site/people/person") >= 2);
        assert!(q("/site/open_auctions/open_auction") >= 1);
        assert!(q("/site/closed_auctions/closed_auction") >= 1);
        assert!(q("/site/categories/category") >= 1);
        assert!(q("//item") >= 2);
    }

    #[test]
    fn manifest_ids_resolve_in_document() {
        let gen = generate(XmarkConfig::sized(60_000, 3));
        let doc = gen.parse();
        let pid = gen.person_ids[0];
        let hits = eval(
            &doc,
            &Query::parse(&format!("/site/people/person[id={pid}]")).unwrap(),
        );
        assert_eq!(hits.len(), 1, "person id {pid} must be unique and findable");
        let aid = gen.open_auction_ids[0];
        let hits = eval(
            &doc,
            &Query::parse(&format!("/site/open_auctions/open_auction[id={aid}]")).unwrap(),
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn ids_globally_unique() {
        let gen = generate(XmarkConfig::sized(40_000, 5));
        let mut all: Vec<u64> = gen
            .person_ids
            .iter()
            .chain(&gen.item_ids)
            .chain(&gen.open_auction_ids)
            .chain(&gen.closed_auction_ids)
            .chain(&gen.category_ids)
            .copied()
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn size_scales_linearly() {
        let small = generate(XmarkConfig::sized(50_000, 9)).byte_size();
        let large = generate(XmarkConfig::sized(200_000, 9)).byte_size();
        let ratio = large as f64 / small as f64;
        assert!(ratio > 2.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn emitted_events_equal_serialized_and_reparsed_tree() {
        // The streaming-equivalence core: building the tree directly from
        // the generator's events gives the same document as serializing
        // the events and parsing the text.
        let config = XmarkConfig::sized(30_000, 13);
        let mut builder = TreeBuilder::new();
        let direct_manifest = emit(config, &mut builder).unwrap();
        let direct = builder.finish().unwrap();
        let via_text = generate(config);
        assert_eq!(direct.to_xml(), via_text.xml);
        assert_eq!(direct_manifest.person_ids, via_text.person_ids);
        direct.check_integrity().unwrap();
    }

    #[test]
    fn emit_streams_guide_and_tree_in_one_pass() {
        use dtx_dataguide::{DataGuide, GuideBuilder};
        use dtx_xml::stream::Tee;
        let config = XmarkConfig::sized(20_000, 4);
        let mut tree = TreeBuilder::new();
        let mut guide = GuideBuilder::new();
        emit(config, &mut Tee::new(&mut tree, &mut guide)).unwrap();
        let doc = tree.finish().unwrap();
        let streamed_guide = guide.finish().unwrap();
        let rebuilt = DataGuide::build(&doc);
        assert_eq!(streamed_guide.len(), rebuilt.len());
        for i in 0..rebuilt.len() {
            let gid = dtx_dataguide::GuideId(i as u32);
            assert_eq!(streamed_guide.node(gid).extent, rebuilt.node(gid).extent);
            assert_eq!(streamed_guide.node(gid).label, rebuilt.node(gid).label);
        }
    }
}
