//! # dtx-xmark — benchmark data, workload and client simulator
//!
//! The paper's evaluation (§3) extends the **XMark** benchmark: "To
//! evaluate DTX the XMark benchmark is extended, adapting its queries to
//! the XPath language and adding update operations ... and we made use of
//! fragmentation techniques to tackle data distribution issues. A client
//! simulator called DTXTester is developed."
//!
//! This crate is that tooling, rebuilt:
//!
//! * [`generator`] — an XMark-like auction-site document generator
//!   (schema of the paper's Fig. 7: regions/items, categories, people,
//!   open and closed auctions) with a byte-size target and deterministic
//!   seeding;
//! * [`fragment`] — size-balanced fragmentation in the style of Kurita et
//!   al. (the paper’s \[22\]): "the data is fragmented considering the
//!   structure and size of the document, so that each generated fragment
//!   has a similar size", plus the Fig. 8 allocation schemes (partial /
//!   total replication);
//! * [`workload`] — XMark queries adapted to the DTX XPath subset and the
//!   five update operations, generated into client transaction lists with
//!   the paper's knobs (clients, transactions per client, operations per
//!   transaction, update-transaction %, update-operation %);
//! * [`tester`] — **DTXTester**: spawns one thread per client, submits
//!   the workload against a [`dtx_core::Cluster`], and collects outcomes.

pub mod fragment;
pub mod generator;
pub mod stream;
pub mod tester;
pub mod workload;

pub use fragment::{
    allocate, load_allocation, Allocation, Fragmented, ReplicationMode, LOGICAL_DOC,
};
pub use generator::{emit, XmarkConfig, XmarkDoc, XmarkManifest};
pub use stream::{manifests_of, stream_fragments, BuiltFragment, FragmentSplitter};
pub use tester::{run_workload, TestReport};
pub use workload::{Workload, WorkloadConfig};
