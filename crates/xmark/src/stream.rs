//! Streaming fragmentation: base events → per-site documents + guides,
//! without ever materializing the whole base.
//!
//! The tree fragmenter ([`crate::fragment::fragment_doc`]) parses the
//! full serialized base, then re-serializes subtrees into per-fragment
//! strings — three full-size materializations before a single site holds
//! its data. At the paper's 50–200 MB base sizes (§3.2.3) that transient
//! footprint is what capped the reproduction at 1:100 scale.
//!
//! [`FragmentSplitter`] is an [`EventSink`] instead: it consumes the
//! generator's event stream once and routes each *entity* subtree
//! (item / person / auction / category) to the currently smallest
//! fragment (the same greedy size balancing as the tree fragmenter,
//! "each generated fragment has a similar size"), while the structural
//! skeleton (`site`, section elements, the six regions) goes to every
//! fragment so all query paths stay valid everywhere. Each fragment
//! builds its [`Document`] **and** its [`DataGuide`] in the same pass,
//! so a site's replica is query- and lock-ready the moment the stream
//! ends — no parse, no `DataGuide::build`, no serialized intermediary.
//!
//! Peak transient memory is the fragments themselves (which are about to
//! be loaded anyway) plus O(depth) splitter state.

use crate::fragment::{Fragment, Fragmented};
use crate::generator::{emit, XmarkConfig, XmarkManifest};
use dtx_dataguide::{DataGuide, GuideBuilder};
use dtx_xml::stream::{EventSink, TreeBuilder, XmlEvent};
use dtx_xml::{Document, XmlResult};

/// One streamed fragment: the in-memory document, its DataGuide (built in
/// the same pass) and the entity ids it received.
#[derive(Debug)]
pub struct BuiltFragment {
    /// Fragment name ("part0", "part1", ...).
    pub name: String,
    /// The fragment's document tree.
    pub doc: Document,
    /// The fragment's DataGuide, built during the same event pass.
    pub guide: DataGuide,
    /// Approximate serialized size in bytes (balance bookkeeping).
    pub bytes: usize,
    /// Person ids routed to this fragment.
    pub person_ids: Vec<u64>,
    /// Open-auction ids routed to this fragment.
    pub open_auction_ids: Vec<u64>,
    /// Item ids routed to this fragment.
    pub item_ids: Vec<u64>,
    /// Category ids routed to this fragment.
    pub category_ids: Vec<u64>,
}

impl BuiltFragment {
    /// The id-manifest view the workload generator consumes (no XML text
    /// — the streaming path never produces one).
    pub fn manifest_fragment(&self) -> Fragment {
        Fragment {
            name: self.name.clone(),
            xml: String::new(),
            person_ids: self.person_ids.clone(),
            open_auction_ids: self.open_auction_ids.clone(),
            item_ids: self.item_ids.clone(),
            category_ids: self.category_ids.clone(),
        }
    }
}

/// Adapts streamed fragments into the [`Fragmented`] manifest shape the
/// workload generator takes (`xml` left empty; workload generation reads
/// only the id vectors).
pub fn manifests_of(fragments: &[BuiltFragment]) -> Fragmented {
    Fragmented {
        fragments: fragments
            .iter()
            .map(BuiltFragment::manifest_fragment)
            .collect(),
    }
}

/// Which id vector an entity belongs to, by section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Regions,
    Categories,
    People,
    OpenAuctions,
    ClosedAuctions,
    Other,
}

impl Section {
    fn of(label: &str) -> Section {
        match label {
            "regions" => Section::Regions,
            "categories" => Section::Categories,
            "people" => Section::People,
            "open_auctions" => Section::OpenAuctions,
            "closed_auctions" => Section::ClosedAuctions,
            _ => Section::Other,
        }
    }
}

struct FragBuild {
    tree: TreeBuilder,
    guide: GuideBuilder,
    bytes: usize,
    person_ids: Vec<u64>,
    open_auction_ids: Vec<u64>,
    item_ids: Vec<u64>,
    category_ids: Vec<u64>,
}

impl FragBuild {
    fn new() -> Self {
        FragBuild {
            tree: TreeBuilder::new(),
            guide: GuideBuilder::new(),
            bytes: 0,
            person_ids: Vec::new(),
            open_auction_ids: Vec::new(),
            item_ids: Vec::new(),
            category_ids: Vec::new(),
        }
    }

    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        self.tree.event(ev)?;
        self.guide.event(ev)
    }
}

/// Routes a base event stream into `n` size-balanced fragments; see the
/// module docs.
pub struct FragmentSplitter {
    frags: Vec<FragBuild>,
    /// Element depth of the *next* StartElement (= open elements so far).
    depth: usize,
    /// Current top-level section.
    section: Section,
    /// Target fragment of the entity currently being routed, with the
    /// depth at which the entity opened.
    target: Option<(usize, usize)>,
    /// Capturing the text of the entity's `<id>` child.
    id_text: Option<String>,
}

impl FragmentSplitter {
    /// A splitter over `n` fragments (`n ≥ 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one fragment");
        FragmentSplitter {
            frags: (0..n).map(|_| FragBuild::new()).collect(),
            depth: 0,
            section: Section::Other,
            target: None,
            id_text: None,
        }
    }

    fn smallest(&self) -> usize {
        self.frags
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.bytes)
            .map(|(i, _)| i)
            .expect("at least one fragment")
    }

    fn broadcast(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        for f in &mut self.frags {
            f.event(ev)?;
        }
        Ok(())
    }

    fn record_entity_id(&mut self, target: usize, id: u64) {
        let f = &mut self.frags[target];
        match self.section {
            Section::Regions => f.item_ids.push(id),
            Section::Categories => f.category_ids.push(id),
            Section::People => f.person_ids.push(id),
            Section::OpenAuctions => f.open_auction_ids.push(id),
            Section::ClosedAuctions | Section::Other => {}
        }
    }

    /// Finishes every fragment: documents and guides become final.
    pub fn finish(self) -> XmlResult<Vec<BuiltFragment>> {
        self.frags
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                Ok(BuiltFragment {
                    name: format!("part{i}"),
                    doc: f.tree.finish()?,
                    guide: f.guide.finish()?,
                    bytes: f.bytes,
                    person_ids: f.person_ids,
                    open_auction_ids: f.open_auction_ids,
                    item_ids: f.item_ids,
                    category_ids: f.category_ids,
                })
            })
            .collect()
    }
}

impl EventSink for FragmentSplitter {
    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        match ev {
            XmlEvent::StartElement { name } => {
                if let Some((target, entity_depth)) = self.target {
                    // Inside an entity: route to its fragment.
                    self.frags[target].bytes += ev.byte_size();
                    self.frags[target].event(ev)?;
                    // The entity's direct `<id>` child feeds the manifest.
                    if self.depth == entity_depth + 1 && name == "id" && self.id_text.is_none() {
                        self.id_text = Some(String::new());
                    }
                } else {
                    let is_entity = match self.section {
                        // Under regions the entities sit one level deeper
                        // (site/regions/<region>/item).
                        Section::Regions => self.depth == 3,
                        Section::Other => false,
                        _ => self.depth == 2,
                    };
                    if self.depth == 1 {
                        self.section = Section::of(name);
                    }
                    if is_entity {
                        let t = self.smallest();
                        self.target = Some((t, self.depth));
                        self.frags[t].bytes += ev.byte_size();
                        self.frags[t].event(ev)?;
                    } else {
                        // Structural skeleton: every fragment keeps it.
                        self.broadcast(ev)?;
                    }
                }
                self.depth += 1;
            }
            XmlEvent::Attribute { .. } => match self.target {
                Some((target, _)) => {
                    self.frags[target].bytes += ev.byte_size();
                    self.frags[target].event(ev)?;
                }
                None => self.broadcast(ev)?,
            },
            XmlEvent::Text { value } => match self.target {
                Some((target, _)) => {
                    if let Some(buf) = &mut self.id_text {
                        buf.push_str(value);
                    }
                    self.frags[target].bytes += ev.byte_size();
                    self.frags[target].event(ev)?;
                }
                None => self.broadcast(ev)?,
            },
            XmlEvent::EndElement { name } => {
                self.depth -= 1;
                match self.target {
                    Some((target, entity_depth)) => {
                        self.frags[target].bytes += ev.byte_size();
                        self.frags[target].event(ev)?;
                        if self.depth == entity_depth + 1 && name == "id" {
                            if let Some(buf) = self.id_text.take() {
                                if let Ok(id) = buf.trim().parse::<u64>() {
                                    self.record_entity_id(target, id);
                                }
                            }
                        }
                        if self.depth == entity_depth {
                            // Entity closed; next entity re-picks a target.
                            self.target = None;
                        }
                    }
                    None => {
                        if self.depth == 1 {
                            self.section = Section::Other;
                        }
                        self.broadcast(ev)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Generates an XMark base of `config` size and splits it into `n`
/// size-balanced fragments **in one streaming pass**: no base string, no
/// re-parse; each fragment's document and DataGuide are ready on return.
/// Returns the fragments and the full-base id manifest.
pub fn stream_fragments(
    config: XmarkConfig,
    n: usize,
) -> XmlResult<(Vec<BuiltFragment>, XmarkManifest)> {
    let mut splitter = FragmentSplitter::new(n);
    let manifest = emit(config, &mut splitter)?;
    Ok((splitter.finish()?, manifest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::fragment_doc;
    use crate::generator::generate;
    use dtx_xpath::{eval, Query};

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn streamed_fragments_match_tree_fragmenter() {
        // Same config, same seed: the streaming splitter and the tree
        // fragmenter partition the same entities the same way (identical
        // greedy balancing), producing equal documents.
        let config = XmarkConfig::sized(120_000, 11);
        let (streamed, _) = stream_fragments(config, 4).unwrap();
        let tree = fragment_doc(&generate(config), 4);
        assert_eq!(streamed.len(), tree.fragments.len());
        for (s, t) in streamed.iter().zip(&tree.fragments) {
            let t_doc = Document::parse(&t.xml).unwrap();
            assert_eq!(s.doc.to_xml(), t_doc.to_xml(), "{}", s.name);
            assert_eq!(s.person_ids, t.person_ids, "{}", s.name);
            assert_eq!(s.item_ids, t.item_ids, "{}", s.name);
            assert_eq!(s.open_auction_ids, t.open_auction_ids, "{}", s.name);
            assert_eq!(s.category_ids, t.category_ids, "{}", s.name);
        }
    }

    #[test]
    fn streamed_guides_match_rebuilds() {
        let (frags, _) = stream_fragments(XmarkConfig::sized(60_000, 5), 3).unwrap();
        for f in &frags {
            let rebuilt = DataGuide::build(&f.doc);
            assert_eq!(f.guide.len(), rebuilt.len(), "{}", f.name);
            for i in 0..rebuilt.len() {
                let gid = dtx_dataguide::GuideId(i as u32);
                assert_eq!(
                    f.guide.node(gid).extent,
                    rebuilt.node(gid).extent,
                    "{} node {}",
                    f.name,
                    i
                );
            }
        }
    }

    #[test]
    fn fragments_are_balanced_and_schema_complete() {
        let (frags, manifest) = stream_fragments(XmarkConfig::sized(120_000, 11), 4).unwrap();
        let max = frags.iter().map(|f| f.bytes).max().unwrap();
        let min = frags.iter().map(|f| f.bytes).min().unwrap().max(1);
        assert!(
            (max as f64 / min as f64) < 1.35,
            "balance ratio {}",
            max as f64 / min as f64
        );
        // Full skeleton present even if a section landed empty.
        for f in &frags {
            for path in [
                "/site/regions/africa",
                "/site/people",
                "/site/open_auctions",
            ] {
                assert_eq!(
                    eval(&f.doc, &q(path)).len(),
                    1,
                    "{path} missing in {}",
                    f.name
                );
            }
            f.doc.check_integrity().unwrap();
        }
        // No entity lost or duplicated.
        let mut person_ids: Vec<u64> = frags.iter().flat_map(|f| f.person_ids.clone()).collect();
        person_ids.sort();
        let mut expected = manifest.person_ids.clone();
        expected.sort();
        assert_eq!(person_ids, expected);
    }

    #[test]
    fn manifest_view_feeds_workload_generation() {
        let (frags, _) = stream_fragments(XmarkConfig::sized(60_000, 21), 4).unwrap();
        let manifests = manifests_of(&frags);
        let w =
            crate::workload::generate(crate::WorkloadConfig::with_updates(5, 40, 3), &manifests);
        assert_eq!(w.total_txns(), 25);
        assert!(w.update_txns() > 0);
    }

    #[test]
    fn single_fragment_keeps_everything() {
        let config = XmarkConfig::sized(40_000, 9);
        let (frags, manifest) = stream_fragments(config, 1).unwrap();
        assert_eq!(
            eval(&frags[0].doc, &q("/site/people/person")).len(),
            manifest.person_ids.len()
        );
    }
}
