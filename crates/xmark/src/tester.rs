//! DTXTester: the multi-client simulator (paper §3, based on \[19\]).
//!
//! "Transaction concurrency is simulated when multiple clients are used.
//! The simulator generates the transactions according to certain
//! parameters, sends them to DTX and collects the results at the end of
//! each execution."
//!
//! [`run_workload`] spawns one OS thread per client; client *i* connects
//! to site *i mod N* (clients spread evenly over sites, as in Fig. 2) and
//! submits its transactions **sequentially** — a client only issues the
//! next transaction after the previous one terminated, exactly like the
//! paper's closed-loop clients. Aborted transactions are *not*
//! resubmitted ("It is the responsibility of the application client to
//! decide if it resubmits"; Fig. 12 counts non-executed transactions
//! separately, so the paper's tester discarded them too).

use crate::workload::Workload;
use dtx_core::{Cluster, SiteId, TxnOutcome};
use std::time::{Duration, Instant};

/// The collected outcomes of one workload run.
#[derive(Debug)]
pub struct TestReport {
    /// Every transaction outcome, in per-client submission order.
    pub outcomes: Vec<TxnOutcome>,
    /// Wall-clock time of the whole run (first submission → last client
    /// done).
    pub wall: Duration,
}

impl TestReport {
    /// Committed transactions.
    pub fn committed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.committed()).count()
    }

    /// Deadlock-victim aborts.
    pub fn deadlocks(&self) -> usize {
        self.outcomes.iter().filter(|o| o.deadlocked()).count()
    }

    /// Aborted (any reason) transactions.
    pub fn aborted(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.committed()).count()
    }

    /// Mean response time over committed transactions (zero when none).
    pub fn mean_response(&self) -> Duration {
        let committed: Vec<&TxnOutcome> = self.outcomes.iter().filter(|o| o.committed()).collect();
        if committed.is_empty() {
            return Duration::ZERO;
        }
        committed.iter().map(|o| o.response_time).sum::<Duration>() / (committed.len() as u32)
    }

    /// Mean response over all terminated transactions.
    pub fn mean_response_all(&self) -> Duration {
        if self.outcomes.is_empty() {
            return Duration::ZERO;
        }
        self.outcomes
            .iter()
            .map(|o| o.response_time)
            .sum::<Duration>()
            / (self.outcomes.len() as u32)
    }
}

/// Runs `workload` against `cluster`, one thread per client, returning the
/// collected outcomes.
pub fn run_workload(cluster: &Cluster, workload: &Workload) -> TestReport {
    let sites = cluster.sites();
    let n_sites = sites.len().max(1);
    let start = Instant::now();
    let outcomes = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workload.clients.len());
        for (i, txns) in workload.clients.iter().enumerate() {
            let site = sites[i % n_sites];
            handles.push(scope.spawn(move || client_loop(cluster, site, txns)));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread"));
        }
        all
    });
    TestReport {
        outcomes,
        wall: start.elapsed(),
    }
}

fn client_loop(cluster: &Cluster, site: SiteId, txns: &[dtx_core::TxnSpec]) -> Vec<TxnOutcome> {
    let mut out = Vec::with_capacity(txns.len());
    for txn in txns {
        out.push(cluster.submit(site, txn.clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{allocate, fragment_doc, ReplicationMode};
    use crate::generator::{generate as gen_doc, XmarkConfig};
    use crate::workload::{generate as gen_workload, WorkloadConfig};
    use dtx_core::{ClusterConfig, ProtocolKind};

    fn small_cluster(
        protocol: ProtocolKind,
        n_sites: u16,
        mode: ReplicationMode,
    ) -> (Cluster, crate::fragment::Fragmented) {
        let doc = gen_doc(XmarkConfig::sized(40_000, 33));
        let frags = fragment_doc(&doc, n_sites as usize);
        let cluster = Cluster::start(ClusterConfig::new(n_sites, protocol));
        let alloc = allocate(&doc, &frags, n_sites, mode);
        crate::fragment::load_allocation(&cluster, &alloc).unwrap();
        (cluster, frags)
    }

    #[test]
    fn read_only_workload_all_commit() {
        let (cluster, frags) = small_cluster(ProtocolKind::Xdgl, 2, ReplicationMode::Partial);
        let w = gen_workload(WorkloadConfig::read_only(4, 1), &frags);
        let report = run_workload(&cluster, &w);
        assert_eq!(report.outcomes.len(), 20);
        assert_eq!(
            report.committed(),
            20,
            "read-only workloads never conflict fatally"
        );
        assert!(report.mean_response() > Duration::ZERO);
        cluster.shutdown();
    }

    #[test]
    fn mixed_workload_terminates_every_transaction() {
        let (cluster, frags) = small_cluster(ProtocolKind::Xdgl, 2, ReplicationMode::Partial);
        let w = gen_workload(WorkloadConfig::with_updates(6, 50, 2), &frags);
        let report = run_workload(&cluster, &w);
        assert_eq!(report.outcomes.len(), 30);
        // Every transaction terminated (commit or abort — none hung).
        assert_eq!(report.committed() + report.aborted(), 30);
        // The strong liveness expectation: most commit.
        assert!(report.committed() >= 25, "committed {}", report.committed());
        cluster.shutdown();
    }

    #[test]
    fn total_replication_works_too() {
        let (cluster, frags) = small_cluster(ProtocolKind::Xdgl, 2, ReplicationMode::Total);
        let w = gen_workload(WorkloadConfig::with_updates(4, 25, 3), &frags);
        let report = run_workload(&cluster, &w);
        assert_eq!(report.committed() + report.aborted(), report.outcomes.len());
        assert!(report.committed() > 0);
        cluster.shutdown();
    }

    #[test]
    fn node2pl_baseline_runs() {
        let (cluster, frags) = small_cluster(ProtocolKind::Node2Pl, 2, ReplicationMode::Partial);
        let w = gen_workload(WorkloadConfig::with_updates(4, 25, 4), &frags);
        let report = run_workload(&cluster, &w);
        assert_eq!(report.committed() + report.aborted(), report.outcomes.len());
        assert!(report.committed() > 0);
        cluster.shutdown();
    }
}
