//! Workload generation: XMark queries adapted to the DTX subset plus the
//! five update operations, shaped by the paper's experiment knobs.
//!
//! §3.2's parameters, reproduced exactly: number of clients, transactions
//! per client (5), operations per transaction (5), percentage of update
//! transactions (20–60 %), percentage of update operations per update
//! transaction (20 %).
//!
//! Every operation targets the **logical** document ([`LOGICAL_DOC`]):
//! the coordinator executes it on every fragment and merges. Entity-id
//! predicates are drawn from a (locality-weighted) fragment's manifest so
//! queries select real entities. Update operations are chosen to be repeatable
//! under concurrency (inserts of fresh entities, value changes, and
//! remove-what-this-transaction-inserted), so aborted-and-discarded
//! transactions never poison later ones — matching the paper's setup
//! where the 250 submitted transactions are a fixed, re-runnable set.

use crate::fragment::{Fragmented, LOGICAL_DOC};
use dtx_core::{OpSpec, TxnSpec};
use dtx_xml::document::{Fragment as XmlFragment, InsertPos};
use dtx_xpath::{Query, UpdateOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default operation locality (see [`WorkloadConfig::locality`]).
pub const DEFAULT_LOCALITY: f64 = 0.8;

/// Workload knobs (paper §3.2).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of clients.
    pub clients: usize,
    /// Transactions per client (paper: 5).
    pub txns_per_client: usize,
    /// Operations per transaction (paper: 5).
    pub ops_per_txn: usize,
    /// Percentage (0–100) of update transactions.
    pub update_txn_pct: u32,
    /// Percentage (0–100) of update operations within an update
    /// transaction (paper: 20).
    pub update_op_pct: u32,
    /// PRNG seed.
    pub seed: u64,
    /// Probability (0.0–1.0) that an operation targets its transaction's
    /// *home* fragment rather than a uniformly random one. Clients of an
    /// auction site exhibit locality; the stray fraction is what makes
    /// transactions distributed.
    pub locality: f64,
}

impl WorkloadConfig {
    /// The paper's §3.2.1 read-only configuration: 5×5 reads per client.
    pub fn read_only(clients: usize, seed: u64) -> Self {
        WorkloadConfig {
            clients,
            txns_per_client: 5,
            ops_per_txn: 5,
            update_txn_pct: 0,
            update_op_pct: 0,
            seed,
            locality: DEFAULT_LOCALITY,
        }
    }

    /// The paper's update-experiment shape: 5×5 ops, given update-txn %,
    /// 20 % update ops per update transaction.
    pub fn with_updates(clients: usize, update_txn_pct: u32, seed: u64) -> Self {
        WorkloadConfig {
            clients,
            txns_per_client: 5,
            ops_per_txn: 5,
            update_txn_pct,
            update_op_pct: 20,
            seed,
            locality: DEFAULT_LOCALITY,
        }
    }
}

/// A generated workload: one transaction list per client.
#[derive(Debug, Clone)]
pub struct Workload {
    /// `clients[i]` is client *i*'s transaction sequence.
    pub clients: Vec<Vec<TxnSpec>>,
}

impl Workload {
    /// Total transactions across clients.
    pub fn total_txns(&self) -> usize {
        self.clients.iter().map(Vec::len).sum()
    }

    /// Total operations across all transactions.
    pub fn total_ops(&self) -> usize {
        self.clients.iter().flatten().map(|t| t.ops.len()).sum()
    }

    /// Number of transactions containing at least one update.
    pub fn update_txns(&self) -> usize {
        self.clients
            .iter()
            .flatten()
            .filter(|t| !t.is_read_only())
            .count()
    }
}

/// Generates a workload over the given fragments.
pub fn generate(config: WorkloadConfig, frags: &Fragmented) -> Workload {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Fresh-id allocator for inserted entities, far above generated ids.
    let mut next_fresh: u64 = 1_000_000;
    let mut clients = Vec::with_capacity(config.clients);
    for _ in 0..config.clients {
        let mut txns = Vec::with_capacity(config.txns_per_client);
        for _ in 0..config.txns_per_client {
            let is_update_txn = rng.gen_range(0..100) < config.update_txn_pct;
            let home = rng.gen_range(0..frags.fragments.len());
            txns.push(gen_txn(
                config,
                frags,
                home,
                is_update_txn,
                &mut rng,
                &mut next_fresh,
            ));
        }
        clients.push(txns);
    }
    Workload { clients }
}

fn gen_txn(
    config: WorkloadConfig,
    frags: &Fragmented,
    home: usize,
    is_update_txn: bool,
    rng: &mut StdRng,
    next_fresh: &mut u64,
) -> TxnSpec {
    let n_ops = config.ops_per_txn.max(1);
    // How many of the ops are updates (at least one in an update txn).
    let n_updates = if is_update_txn {
        (n_ops as u32 * config.update_op_pct).div_ceil(100).max(1) as usize
    } else {
        0
    };
    // Place updates at random positions.
    let mut is_update = vec![false; n_ops];
    let mut placed = 0;
    while placed < n_updates.min(n_ops) {
        let at = rng.gen_range(0..n_ops);
        if !is_update[at] {
            is_update[at] = true;
            placed += 1;
        }
    }
    let ops = is_update
        .into_iter()
        .map(|upd| {
            let frag = pick_frag(frags, home, config.locality, rng);
            if upd {
                gen_update(frags, frag, rng, next_fresh)
            } else {
                gen_query(frags, frag, rng)
            }
        })
        .collect();
    TxnSpec::new(ops)
}

fn pick_frag<'a>(
    frags: &'a Fragmented,
    home: usize,
    locality: f64,
    rng: &mut StdRng,
) -> &'a crate::fragment::Fragment {
    if rng.gen_bool(locality.clamp(0.0, 1.0)) {
        &frags.fragments[home]
    } else {
        &frags.fragments[rng.gen_range(0..frags.fragments.len())]
    }
}

fn pick_id(ids: &[u64], rng: &mut StdRng) -> Option<u64> {
    if ids.is_empty() {
        None
    } else {
        Some(ids[rng.gen_range(0..ids.len())])
    }
}

/// One of eight XMark-derived query templates, adapted to the subset.
fn gen_query(_frags: &Fragmented, frag: &crate::fragment::Fragment, rng: &mut StdRng) -> OpSpec {
    let template = rng.gen_range(0..8u32);
    let q = match template {
        0 => match pick_id(&frag.person_ids, rng) {
            Some(id) => format!("/site/people/person[id={id}]/name"),
            None => "/site/people/person/name".to_owned(),
        },
        1 => "/site/open_auctions/open_auction/bidder/increase".to_owned(),
        2 => {
            let region = [
                "africa",
                "asia",
                "australia",
                "europe",
                "namerica",
                "samerica",
            ][rng.gen_range(0..6)];
            format!("/site/regions/{region}/item/name")
        }
        3 => format!(
            "/site/people/person[profile/age>{}]/name",
            rng.gen_range(25..60)
        ),
        4 => match pick_id(&frag.open_auction_ids, rng) {
            Some(id) => format!("/site/open_auctions/open_auction[id={id}]/current"),
            None => "/site/open_auctions/open_auction/current".to_owned(),
        },
        5 => match pick_id(&frag.item_ids, rng) {
            Some(id) => format!("//item[id={id}]/description"),
            None => "//item/description".to_owned(),
        },
        6 => "/site/closed_auctions/closed_auction/price".to_owned(),
        _ => "/site/categories/category/name".to_owned(),
    };
    OpSpec::query(LOGICAL_DOC, Query::parse(&q).expect("template parses"))
}

/// One of five update templates covering insert / change / remove.
fn gen_update(
    _frags: &Fragmented,
    frag: &crate::fragment::Fragment,
    rng: &mut StdRng,
    next_fresh: &mut u64,
) -> OpSpec {
    let template = rng.gen_range(0..5u32);
    match template {
        // Insert a fresh person (the paper's t2op2 shape), anchored after
        // an existing person so that under fragmentation exactly one
        // fragment (the anchor's) receives it.
        0 => {
            let id = *next_fresh;
            *next_fresh += 1;
            let (target, pos) = match pick_id(&frag.person_ids, rng) {
                Some(anchor) => (
                    format!("/site/people/person[id={anchor}]"),
                    InsertPos::After,
                ),
                None => ("/site/people".to_owned(), InsertPos::Into),
            };
            OpSpec::update(
                LOGICAL_DOC,
                UpdateOp::Insert {
                    target: Query::parse(&target).expect("parses"),
                    fragment: XmlFragment::elem(
                        "person",
                        vec![
                            XmlFragment::elem_text("id", id.to_string()),
                            XmlFragment::elem_text("name", format!("Client{id}")),
                            XmlFragment::elem_text("emailaddress", format!("c{id}@example.org")),
                        ],
                    ),
                    pos,
                },
            )
        }
        // Insert a bid into a specific open auction.
        1 => {
            let target = match pick_id(&frag.open_auction_ids, rng) {
                Some(id) => format!("/site/open_auctions/open_auction[id={id}]"),
                None => "/site/open_auctions".to_owned(),
            };
            OpSpec::update(
                LOGICAL_DOC,
                UpdateOp::Insert {
                    target: Query::parse(&target).expect("parses"),
                    fragment: XmlFragment::elem(
                        "bidder",
                        vec![
                            XmlFragment::elem_text("date", "2009-06-01"),
                            XmlFragment::elem_text(
                                "increase",
                                format!("{}.00", rng.gen_range(1..20)),
                            ),
                        ],
                    ),
                    pos: InsertPos::Into,
                },
            )
        }
        // Change the current price of an auction.
        2 => {
            let target = match pick_id(&frag.open_auction_ids, rng) {
                Some(id) => format!("/site/open_auctions/open_auction[id={id}]/current"),
                None => "/site/open_auctions/open_auction/current".to_owned(),
            };
            OpSpec::update(
                LOGICAL_DOC,
                UpdateOp::Change {
                    target: Query::parse(&target).expect("parses"),
                    new_value: format!("{}.{:02}", rng.gen_range(10..900), rng.gen_range(0..100)),
                },
            )
        }
        // Change a person's phone number.
        3 => {
            let target = match pick_id(&frag.person_ids, rng) {
                Some(id) => format!("/site/people/person[id={id}]/phone"),
                None => "/site/people/person/phone".to_owned(),
            };
            OpSpec::update(
                LOGICAL_DOC,
                UpdateOp::Change {
                    target: Query::parse(&target).expect("parses"),
                    new_value: format!("+55 85 9{:07}", rng.gen_range(0..9_999_999)),
                },
            )
        }
        // Insert a fresh category, anchored after an existing one.
        _ => {
            let id = *next_fresh;
            *next_fresh += 1;
            let (target, pos) = match pick_id(&frag.category_ids, rng) {
                Some(anchor) => (
                    format!("/site/categories/category[id={anchor}]"),
                    InsertPos::After,
                ),
                None => ("/site/categories".to_owned(), InsertPos::Into),
            };
            OpSpec::update(
                LOGICAL_DOC,
                UpdateOp::Insert {
                    target: Query::parse(&target).expect("parses"),
                    fragment: XmlFragment::elem(
                        "category",
                        vec![
                            XmlFragment::elem_text("id", id.to_string()),
                            XmlFragment::elem_text("name", "fresh"),
                        ],
                    ),
                    pos,
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::fragment_doc;
    use crate::generator::{generate as gen_doc, XmarkConfig};

    fn frags() -> Fragmented {
        fragment_doc(&gen_doc(XmarkConfig::sized(80_000, 21)), 4)
    }

    #[test]
    fn counts_match_config() {
        let f = frags();
        let w = generate(WorkloadConfig::read_only(10, 1), &f);
        assert_eq!(w.clients.len(), 10);
        assert_eq!(w.total_txns(), 50);
        assert_eq!(w.total_ops(), 250);
        assert_eq!(w.update_txns(), 0);
    }

    #[test]
    fn update_percentage_respected() {
        let f = frags();
        let w = generate(WorkloadConfig::with_updates(50, 40, 2), &f);
        let frac = w.update_txns() as f64 / w.total_txns() as f64;
        assert!((0.25..=0.55).contains(&frac), "update fraction {frac}");
        // Update txns have ~20% update ops → exactly 1 of 5.
        for txn in w.clients.iter().flatten().filter(|t| !t.is_read_only()) {
            let n = txn.ops.iter().filter(|o| o.is_update()).count();
            assert_eq!(n, 1, "expected exactly 1 update op in a 5-op txn");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let f = frags();
        let a = generate(WorkloadConfig::with_updates(5, 20, 3), &f);
        let b = generate(WorkloadConfig::with_updates(5, 20, 3), &f);
        assert_eq!(a.clients, b.clients);
        let c = generate(WorkloadConfig::with_updates(5, 20, 4), &f);
        assert_ne!(a.clients, c.clients);
    }

    #[test]
    fn ops_target_the_logical_document() {
        let f = frags();
        let w = generate(WorkloadConfig::with_updates(10, 50, 5), &f);
        for op in w.clients.iter().flatten().flat_map(|t| &t.ops) {
            assert_eq!(op.doc, LOGICAL_DOC, "all ops address the logical document");
        }
    }

    #[test]
    fn all_query_templates_parse_and_execute() {
        // Smoke-run every generated query against the full base document.
        let base = gen_doc(XmarkConfig::sized(80_000, 21));
        let f = fragment_doc(&base, 4);
        let doc = dtx_xml::Document::parse(&base.xml).unwrap();
        let w = generate(WorkloadConfig::with_updates(20, 30, 6), &f);
        for op in w.clients.iter().flatten().flat_map(|t| &t.ops) {
            if let dtx_core::OpKind::Query(q) = &op.kind {
                // Must evaluate without panicking (may legitimately be empty).
                let _ = dtx_xpath::eval(&doc, q);
            }
        }
    }

    #[test]
    fn update_ops_apply_cleanly_on_the_full_document() {
        let base = gen_doc(XmarkConfig::sized(80_000, 23));
        let f = fragment_doc(&base, 4);
        let w = generate(WorkloadConfig::with_updates(20, 100, 7), &f);
        let mut doc = dtx_xml::Document::parse(&base.xml).unwrap();
        let mut applied = 0;
        for op in w.clients.iter().flatten().flat_map(|t| &t.ops) {
            if let dtx_core::OpKind::Update(u) = &op.kind {
                dtx_xpath::apply_update(&mut doc, u)
                    .unwrap_or_else(|e| panic!("update {u} failed: {e}"));
                applied += 1;
            }
        }
        assert!(applied > 0);
        doc.check_integrity().unwrap();
    }
}
