//! Arena-based ordered XML tree.
//!
//! [`Document`] owns every node of one XML document in a flat arena and
//! exposes exactly the update vocabulary of the XDGL update language used
//! by DTX: **insert**, **remove**, **rename**, **change** and **transpose**
//! (paper §2: "This language has five types of update operations").
//!
//! Updates are designed to be *invertible*: every mutating method returns
//! the information needed to undo it ([`Removed`] for removals, the old
//! label/value for renames/changes), which the storage layer's undo log
//! records so aborted transactions can roll back (paper §2: "upon abortion,
//! the transaction undoes all its effects on the required data").

use crate::error::{XmlError, XmlResult};
use crate::intern::{Interner, Symbol};
use crate::node::{Node, NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// Where to place an inserted node relative to its anchor.
///
/// These correspond to the three shared insert-lock modes of XDGL:
/// *SI (shared into)*, *SB (shared before)*, *SA (shared after)*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsertPos {
    /// Append as the last child of the anchor element.
    Into,
    /// Insert as the first child of the anchor element.
    FirstInto,
    /// Insert as the sibling immediately before the anchor node.
    Before,
    /// Insert as the sibling immediately after the anchor node.
    After,
}

/// A detached, self-contained XML subtree.
///
/// Fragments use string labels (not interned symbols) so they can travel
/// between documents, sites and network messages; insertion re-interns the
/// labels into the receiving document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fragment {
    /// Element with label and ordered children.
    Element {
        label: String,
        children: Vec<Fragment>,
    },
    /// Attribute with label and value.
    Attribute { label: String, value: String },
    /// Text content.
    Text { value: String },
}

impl Fragment {
    /// Convenience constructor for an element fragment.
    pub fn elem(label: impl Into<String>, children: Vec<Fragment>) -> Self {
        Fragment::Element {
            label: label.into(),
            children,
        }
    }

    /// Convenience constructor for an element holding a single text child.
    pub fn elem_text(label: impl Into<String>, text: impl Into<String>) -> Self {
        Fragment::Element {
            label: label.into(),
            children: vec![Fragment::Text { value: text.into() }],
        }
    }

    /// Convenience constructor for an attribute fragment.
    pub fn attr(label: impl Into<String>, value: impl Into<String>) -> Self {
        Fragment::Attribute {
            label: label.into(),
            value: value.into(),
        }
    }

    /// Convenience constructor for a text fragment.
    pub fn text(value: impl Into<String>) -> Self {
        Fragment::Text {
            value: value.into(),
        }
    }

    /// Number of nodes in the fragment (itself plus descendants).
    pub fn node_count(&self) -> usize {
        match self {
            Fragment::Element { children, .. } => {
                1 + children.iter().map(Fragment::node_count).sum::<usize>()
            }
            _ => 1,
        }
    }

    /// Label of the fragment root, when it has one.
    pub fn label(&self) -> Option<&str> {
        match self {
            Fragment::Element { label, .. } | Fragment::Attribute { label, .. } => Some(label),
            Fragment::Text { .. } => None,
        }
    }

    /// Approximate serialized size in bytes, used by the storage cost model.
    pub fn byte_size(&self) -> usize {
        match self {
            Fragment::Element { label, children } => {
                2 * label.len() + 5 + children.iter().map(Fragment::byte_size).sum::<usize>()
            }
            Fragment::Attribute { label, value } => label.len() + value.len() + 4,
            Fragment::Text { value } => value.len(),
        }
    }
}

/// Undo record for a removal: the detached subtree plus its position, so an
/// abort can splice it back exactly where it was.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Removed {
    /// The subtree that was removed.
    pub fragment: Fragment,
    /// Parent it was removed from.
    pub parent: NodeId,
    /// Index within the parent's child list it occupied.
    pub index: usize,
    /// The tombstoned arena slots, root first: ids are never reused, so
    /// [`Document::unremove`] reinstates exactly these slots and the
    /// subtree keeps its original node ids. Id stability is what makes
    /// LIFO multi-operation undo compose — an aborted transaction that
    /// removed a node it had inserted earlier must see the insert's undo
    /// find that node again under its recorded id.
    slots: Vec<(NodeId, Node)>,
}

/// An in-memory XML document: a rooted ordered tree in an arena, plus a
/// label interner.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    nodes: Vec<Option<Node>>,
    root: NodeId,
    interner: Interner,
    live: usize,
}

impl Document {
    /// Creates a document whose root element is labelled `root_label`.
    pub fn new(root_label: &str) -> Self {
        let mut interner = Interner::new();
        let label = interner.intern(root_label);
        Document {
            nodes: vec![Some(Node::element(label))],
            root: NodeId(0),
            interner,
            live: 1,
        }
    }

    /// Parses an XML string into a document. See [`crate::parser`].
    pub fn parse(input: &str) -> XmlResult<Self> {
        crate::parser::parse(input)
    }

    /// Builds a document from a fragment (the fragment root becomes the
    /// document root; it must be an element).
    pub fn from_fragment(fragment: &Fragment) -> XmlResult<Self> {
        match fragment {
            Fragment::Element { label, children } => {
                let mut doc = Document::new(label);
                let root = doc.root();
                for child in children {
                    doc.insert_fragment(root, child, InsertPos::Into)?;
                }
                Ok(doc)
            }
            _ => Err(XmlError::InvalidTreeOp(
                "document root must be an element".into(),
            )),
        }
    }

    /// The root element id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Shared access to the interner.
    #[inline]
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Interns a label into this document's interner.
    pub fn intern(&mut self, label: &str) -> Symbol {
        self.interner.intern(label)
    }

    /// Number of live nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.live
    }

    /// Total arena slots allocated (live + tombstoned); ids are `< capacity`.
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether `id` refers to a live node.
    #[inline]
    pub fn is_live(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> XmlResult<&Node> {
        self.nodes
            .get(id.index())
            .and_then(Option::as_ref)
            .ok_or(XmlError::StaleNode(id.0))
    }

    fn node_mut(&mut self, id: NodeId) -> XmlResult<&mut Node> {
        self.nodes
            .get_mut(id.index())
            .and_then(Option::as_mut)
            .ok_or(XmlError::StaleNode(id.0))
    }

    /// Parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> XmlResult<Option<NodeId>> {
        Ok(self.node(id)?.parent)
    }

    /// Ordered children of a node.
    pub fn children(&self, id: NodeId) -> XmlResult<&[NodeId]> {
        Ok(&self.node(id)?.children)
    }

    /// Label of a node, when it has one (elements, attributes).
    pub fn label(&self, id: NodeId) -> XmlResult<Option<Symbol>> {
        Ok(self.node(id)?.kind.label())
    }

    /// Resolves a node's label to a string (empty for text nodes).
    pub fn label_str(&self, id: NodeId) -> XmlResult<&str> {
        Ok(match self.node(id)?.kind.label() {
            Some(sym) => self.interner.resolve(sym),
            None => "",
        })
    }

    /// Value of a node, when it has one (attributes, text).
    pub fn value(&self, id: NodeId) -> XmlResult<Option<&str>> {
        Ok(self.node(id)?.kind.value())
    }

    /// The label path from the root down to `id` (root label first).
    /// Text nodes contribute no step; attribute steps carry the attribute
    /// label. This is the key the DataGuide classifies nodes by.
    pub fn label_path(&self, id: NodeId) -> XmlResult<Vec<Symbol>> {
        let mut path = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            let node = self.node(n)?;
            if let Some(sym) = node.kind.label() {
                path.push(sym);
            }
            cur = node.parent;
        }
        path.reverse();
        Ok(path)
    }

    /// All ancestors of `id`, nearest first (excludes `id` itself).
    pub fn ancestors(&self, id: NodeId) -> XmlResult<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut cur = self.node(id)?.parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.node(p)?.parent;
        }
        Ok(out)
    }

    /// True when `anc` is a strict ancestor of `id`.
    pub fn is_ancestor(&self, anc: NodeId, id: NodeId) -> XmlResult<bool> {
        let mut cur = self.node(id)?.parent;
        while let Some(p) = cur {
            if p == anc {
                return Ok(true);
            }
            cur = self.node(p)?.parent;
        }
        Ok(false)
    }

    /// Pre-order iterator over the subtree rooted at `id` (including `id`).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        Descendants {
            doc: self,
            stack: vec![id],
        }
    }

    /// Concatenated text content of the subtree rooted at `id`.
    pub fn text_of(&self, id: NodeId) -> XmlResult<String> {
        let mut out = String::new();
        for n in self.descendants(id) {
            if let NodeKind::Text { value } = &self.node(n)?.kind {
                out.push_str(value);
            }
        }
        Ok(out)
    }

    /// First child element of `id` labelled `label`, if any.
    pub fn child_by_label(&self, id: NodeId, label: Symbol) -> XmlResult<Option<NodeId>> {
        for &c in self.children(id)? {
            if self.node(c)?.kind.label() == Some(label) {
                return Ok(Some(c));
            }
        }
        Ok(None)
    }

    /// Value of the attribute `label` on element `id`, if present.
    pub fn attribute(&self, id: NodeId, label: Symbol) -> XmlResult<Option<&str>> {
        for &c in self.children(id)? {
            let n = self.node(c)?;
            if n.is_attribute() && n.kind.label() == Some(label) {
                return Ok(n.kind.value());
            }
        }
        Ok(None)
    }

    /// Number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants(id).count()
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.live += 1;
        id
    }

    fn append_node(&mut self, parent: NodeId, node: Node) -> XmlResult<NodeId> {
        if !self.node(parent)?.is_element() {
            return Err(XmlError::KindMismatch {
                expected: "element",
                found: self.node(parent)?.kind.kind_name(),
            });
        }
        let id = self.alloc(node);
        self.node_mut(id)?.parent = Some(parent);
        self.node_mut(parent)?.children.push(id);
        Ok(id)
    }

    /// Appends a child element as the last child of `parent` (the
    /// streaming-ingest fast path: no [`Fragment`] intermediary).
    pub fn append_element(&mut self, parent: NodeId, label: &str) -> XmlResult<NodeId> {
        let sym = self.interner.intern(label);
        self.append_node(parent, Node::element(sym))
    }

    /// Appends an attribute node to `parent` (streaming-ingest fast path).
    pub fn append_attribute(
        &mut self,
        parent: NodeId,
        label: &str,
        value: String,
    ) -> XmlResult<NodeId> {
        let sym = self.interner.intern(label);
        self.append_node(parent, Node::attribute(sym, value))
    }

    /// Appends a text node to `parent` (streaming-ingest fast path).
    pub fn append_text(&mut self, parent: NodeId, value: String) -> XmlResult<NodeId> {
        self.append_node(parent, Node::text(value))
    }

    // ----------------------------------------------------------------
    // The five XDGL update operations
    // ----------------------------------------------------------------

    /// **insert**: splices `fragment` into the tree relative to `anchor`.
    ///
    /// Returns the id of the new subtree root. `Into`/`FirstInto` require
    /// `anchor` to be an element; `Before`/`After` require `anchor` to have
    /// a parent.
    pub fn insert_fragment(
        &mut self,
        anchor: NodeId,
        fragment: &Fragment,
        pos: InsertPos,
    ) -> XmlResult<NodeId> {
        let (parent, index) = self.resolve_insert_target(anchor, pos)?;
        let new_id = self.build_fragment(fragment)?;
        self.node_mut(new_id)?.parent = Some(parent);
        self.node_mut(parent)?.children.insert(index, new_id);
        Ok(new_id)
    }

    /// **insert** of a bare element (no subtree), returning its id.
    pub fn insert_element(
        &mut self,
        anchor: NodeId,
        label: &str,
        pos: InsertPos,
    ) -> XmlResult<NodeId> {
        self.insert_fragment(anchor, &Fragment::elem(label, vec![]), pos)
    }

    fn resolve_insert_target(&self, anchor: NodeId, pos: InsertPos) -> XmlResult<(NodeId, usize)> {
        match pos {
            InsertPos::Into => {
                let n = self.node(anchor)?;
                if !n.is_element() {
                    return Err(XmlError::KindMismatch {
                        expected: "element",
                        found: n.kind.kind_name(),
                    });
                }
                Ok((anchor, n.children.len()))
            }
            InsertPos::FirstInto => {
                let n = self.node(anchor)?;
                if !n.is_element() {
                    return Err(XmlError::KindMismatch {
                        expected: "element",
                        found: n.kind.kind_name(),
                    });
                }
                Ok((anchor, 0))
            }
            InsertPos::Before | InsertPos::After => {
                let parent = self.node(anchor)?.parent.ok_or_else(|| {
                    XmlError::InvalidTreeOp("cannot insert beside the root".into())
                })?;
                let idx = self.child_index(parent, anchor)?;
                Ok((
                    parent,
                    if pos == InsertPos::Before {
                        idx
                    } else {
                        idx + 1
                    },
                ))
            }
        }
    }

    fn child_index(&self, parent: NodeId, child: NodeId) -> XmlResult<usize> {
        self.node(parent)?
            .children
            .iter()
            .position(|&c| c == child)
            .ok_or_else(|| XmlError::InvalidTreeOp(format!("{child} is not a child of {parent}")))
    }

    fn build_fragment(&mut self, fragment: &Fragment) -> XmlResult<NodeId> {
        match fragment {
            Fragment::Element { label, children } => {
                let sym = self.interner.intern(label);
                let id = self.alloc(Node::element(sym));
                for child in children {
                    let cid = self.build_fragment(child)?;
                    self.node_mut(cid)?.parent = Some(id);
                    self.node_mut(id)?.children.push(cid);
                }
                Ok(id)
            }
            Fragment::Attribute { label, value } => {
                let sym = self.interner.intern(label);
                Ok(self.alloc(Node::attribute(sym, value.clone())))
            }
            Fragment::Text { value } => Ok(self.alloc(Node::text(value.clone()))),
        }
    }

    /// **remove**: detaches the subtree rooted at `id` and tombstones its
    /// nodes. Returns a [`Removed`] record sufficient to undo the removal.
    pub fn remove(&mut self, id: NodeId) -> XmlResult<Removed> {
        let parent = self
            .node(id)?
            .parent
            .ok_or_else(|| XmlError::InvalidTreeOp("cannot remove the document root".into()))?;
        let index = self.child_index(parent, id)?;
        let fragment = self.to_fragment(id)?;
        let slots: Vec<(NodeId, Node)> = self
            .descendants(id)
            .map(|n| (n, self.nodes[n.index()].clone().expect("live subtree")))
            .collect();
        self.node_mut(parent)?.children.retain(|&c| c != id);
        // Tombstone the whole subtree.
        for &(n, _) in &slots {
            self.nodes[n.index()] = None;
            self.live -= 1;
        }
        Ok(Removed {
            fragment,
            parent,
            index,
            slots,
        })
    }

    /// Undoes a removal by splicing the recorded subtree back at its
    /// original position, **under its original node ids**: ids are never
    /// reused, so the tombstoned slots are guaranteed still free and are
    /// reinstated verbatim. Returns the id of the restored subtree root.
    pub fn unremove(&mut self, removed: &Removed) -> XmlResult<NodeId> {
        let restorable = !removed.slots.is_empty()
            && removed
                .slots
                .iter()
                .all(|(id, _)| matches!(self.nodes.get(id.index()), Some(None)));
        if restorable {
            for (id, node) in &removed.slots {
                self.nodes[id.index()] = Some(node.clone());
                self.live += 1;
            }
            let root = removed.slots[0].0;
            self.node_mut(root)?.parent = Some(removed.parent);
            let parent = self.node_mut(removed.parent)?;
            let idx = removed.index.min(parent.children.len());
            parent.children.insert(idx, root);
            return Ok(root);
        }
        // Fallback (slot collision — e.g. a record replayed against a
        // different document): rebuild the subtree under fresh ids.
        let new_id = self.build_fragment(&removed.fragment)?;
        self.node_mut(new_id)?.parent = Some(removed.parent);
        let parent = self.node_mut(removed.parent)?;
        let idx = removed.index.min(parent.children.len());
        parent.children.insert(idx, new_id);
        Ok(new_id)
    }

    /// **rename**: relabels an element or attribute; returns the old label.
    pub fn rename(&mut self, id: NodeId, new_label: &str) -> XmlResult<Symbol> {
        let sym = self.interner.intern(new_label);
        let node = self.node_mut(id)?;
        match &mut node.kind {
            NodeKind::Element { label } | NodeKind::Attribute { label, .. } => {
                let old = *label;
                *label = sym;
                Ok(old)
            }
            NodeKind::Text { .. } => Err(XmlError::KindMismatch {
                expected: "element or attribute",
                found: "text",
            }),
        }
    }

    /// **change**: replaces the value of a text or attribute node; returns
    /// the old value. Applied to an *element*, it replaces the element's
    /// single text child (creating one if absent) — the common "change the
    /// price" usage in the paper's scenario.
    pub fn change_value(&mut self, id: NodeId, new_value: &str) -> XmlResult<String> {
        Ok(self.change_value_tracked(id, new_value)?.0)
    }

    /// Like [`Self::change_value`], additionally reporting the text child it
    /// *created* when the target was an element with no text child (`None`
    /// when an existing node's value was replaced). The exact inverse of the
    /// creating case is removing that node again, not writing the empty
    /// string into it — undo machinery needs the id to do so.
    pub fn change_value_tracked(
        &mut self,
        id: NodeId,
        new_value: &str,
    ) -> XmlResult<(String, Option<NodeId>)> {
        let is_element = self.node(id)?.is_element();
        if is_element {
            // Find (or create) the text child.
            let text_child = self
                .children(id)?
                .iter()
                .copied()
                .find(|&c| self.node(c).map(|n| n.is_text()).unwrap_or(false));
            return match text_child {
                Some(t) => self.change_value_tracked(t, new_value),
                None => {
                    let tid = self.alloc(Node::text(new_value));
                    self.node_mut(tid)?.parent = Some(id);
                    self.node_mut(id)?.children.push(tid);
                    Ok((String::new(), Some(tid)))
                }
            };
        }
        let node = self.node_mut(id)?;
        match &mut node.kind {
            NodeKind::Attribute { value, .. } | NodeKind::Text { value } => {
                Ok((std::mem::replace(value, new_value.to_owned()), None))
            }
            NodeKind::Element { .. } => unreachable!("handled above"),
        }
    }

    /// **transpose**: swaps the tree positions of two nodes (and their
    /// subtrees). Neither may be the root or an ancestor of the other.
    pub fn transpose(&mut self, a: NodeId, b: NodeId) -> XmlResult<()> {
        if a == b {
            return Ok(());
        }
        if self.is_ancestor(a, b)? || self.is_ancestor(b, a)? {
            return Err(XmlError::InvalidTreeOp(
                "cannot transpose a node with its own ancestor/descendant".into(),
            ));
        }
        let pa = self
            .node(a)?
            .parent
            .ok_or_else(|| XmlError::InvalidTreeOp("cannot transpose the root".into()))?;
        let pb = self
            .node(b)?
            .parent
            .ok_or_else(|| XmlError::InvalidTreeOp("cannot transpose the root".into()))?;
        let ia = self.child_index(pa, a)?;
        let ib = self.child_index(pb, b)?;
        self.node_mut(pa)?.children[ia] = b;
        self.node_mut(pb)?.children[ib] = a;
        self.node_mut(a)?.parent = Some(pb);
        self.node_mut(b)?.parent = Some(pa);
        Ok(())
    }

    /// Clones the subtree rooted at `id` into a detached [`Fragment`].
    pub fn to_fragment(&self, id: NodeId) -> XmlResult<Fragment> {
        let node = self.node(id)?;
        Ok(match &node.kind {
            NodeKind::Element { label } => {
                let mut children = Vec::with_capacity(node.children.len());
                for &c in &node.children {
                    children.push(self.to_fragment(c)?);
                }
                Fragment::Element {
                    label: self.interner.resolve(*label).to_owned(),
                    children,
                }
            }
            NodeKind::Attribute { label, value } => Fragment::Attribute {
                label: self.interner.resolve(*label).to_owned(),
                value: value.clone(),
            },
            NodeKind::Text { value } => Fragment::Text {
                value: value.clone(),
            },
        })
    }

    /// Serializes the whole document to XML text.
    pub fn to_xml(&self) -> String {
        crate::serializer::Serializer::new(self).document()
    }

    /// Checks structural invariants (parent/child symmetry, liveness,
    /// acyclicity). Intended for tests and debug assertions; returns a
    /// description of the first violation found.
    pub fn check_integrity(&self) -> Result<(), String> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.root];
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                return Err(format!("cycle or shared node at {id}"));
            }
            seen[id.index()] = true;
            visited += 1;
            let node = match self.nodes.get(id.index()).and_then(Option::as_ref) {
                Some(n) => n,
                None => return Err(format!("dangling child reference {id}")),
            };
            for &c in &node.children {
                let child = match self.nodes.get(c.index()).and_then(Option::as_ref) {
                    Some(n) => n,
                    None => return Err(format!("child {c} of {id} is tombstoned")),
                };
                if child.parent != Some(id) {
                    return Err(format!("child {c} of {id} has parent {:?}", child.parent));
                }
                stack.push(c);
            }
        }
        if visited != self.live {
            return Err(format!(
                "live count mismatch: counted {visited} reachable, recorded {}",
                self.live
            ));
        }
        Ok(())
    }
}

/// Pre-order traversal iterator, see [`Document::descendants`].
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        if let Ok(node) = self.doc.node(id) {
            // Push in reverse so children pop in document order.
            for &c in node.children.iter().rev() {
                self.stack.push(c);
            }
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_doc() -> Document {
        // The paper's d2: products with two products.
        let mut doc = Document::new("products");
        let root = doc.root();
        for (id, desc, price) in [("4", "Monitor", "120.00"), ("14", "Printer", "55.50")] {
            doc.insert_fragment(
                root,
                &Fragment::elem(
                    "product",
                    vec![
                        Fragment::elem_text("id", id),
                        Fragment::elem_text("description", desc),
                        Fragment::elem_text("price", price),
                    ],
                ),
                InsertPos::Into,
            )
            .unwrap();
        }
        doc
    }

    #[test]
    fn build_and_navigate() {
        let doc = store_doc();
        let root = doc.root();
        assert_eq!(doc.label_str(root).unwrap(), "products");
        let products = doc.children(root).unwrap();
        assert_eq!(products.len(), 2);
        let p0 = products[0];
        assert_eq!(doc.label_str(p0).unwrap(), "product");
        let id_sym = doc.interner().get("id").unwrap();
        let id_node = doc.child_by_label(p0, id_sym).unwrap().unwrap();
        assert_eq!(doc.text_of(id_node).unwrap(), "4");
        doc.check_integrity().unwrap();
    }

    #[test]
    fn insert_positions() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let b = doc.insert_element(root, "b", InsertPos::Into).unwrap();
        let _a = doc
            .insert_fragment(b, &Fragment::elem("a", vec![]), InsertPos::Before)
            .unwrap();
        let _c = doc
            .insert_fragment(b, &Fragment::elem("c", vec![]), InsertPos::After)
            .unwrap();
        let _z = doc.insert_element(root, "z", InsertPos::FirstInto).unwrap();
        let labels: Vec<_> = doc
            .children(root)
            .unwrap()
            .iter()
            .map(|&c| doc.label_str(c).unwrap().to_owned())
            .collect();
        assert_eq!(labels, vec!["z", "a", "b", "c"]);
        doc.check_integrity().unwrap();
    }

    #[test]
    fn insert_beside_root_fails() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let err = doc
            .insert_element(root, "x", InsertPos::Before)
            .unwrap_err();
        assert!(matches!(err, XmlError::InvalidTreeOp(_)));
    }

    #[test]
    fn insert_into_text_fails() {
        let mut doc = Document::new("r");
        let root = doc.root();
        let e = doc
            .insert_fragment(root, &Fragment::text("hi"), InsertPos::Into)
            .unwrap();
        let err = doc.insert_element(e, "x", InsertPos::Into).unwrap_err();
        assert!(matches!(err, XmlError::KindMismatch { .. }));
    }

    #[test]
    fn remove_and_unremove_round_trip() {
        let mut doc = store_doc();
        let before = doc.to_xml();
        let root = doc.root();
        let victim = doc.children(root).unwrap()[0];
        let n_before = doc.node_count();
        let sz = doc.subtree_size(victim);
        let removed = doc.remove(victim).unwrap();
        assert_eq!(doc.node_count(), n_before - sz);
        assert!(!doc.is_live(victim));
        doc.check_integrity().unwrap();
        doc.unremove(&removed).unwrap();
        assert_eq!(doc.node_count(), n_before);
        assert_eq!(doc.to_xml(), before);
        doc.check_integrity().unwrap();
    }

    #[test]
    fn unremove_restores_original_node_ids() {
        // Id stability across remove/unremove: an aborted transaction
        // that removed a subtree it had inserted earlier must see the
        // insert's undo find the node again under its recorded id.
        let mut doc = store_doc();
        let root = doc.root();
        let victim = doc.children(root).unwrap()[0];
        let subtree: Vec<NodeId> = doc.descendants(victim).collect();
        let removed = doc.remove(victim).unwrap();
        let restored = doc.unremove(&removed).unwrap();
        assert_eq!(restored, victim, "root id must be reinstated");
        for n in subtree {
            assert!(doc.is_live(n), "subtree id {n} must be reinstated");
        }
        doc.check_integrity().unwrap();
    }

    #[test]
    fn remove_root_fails() {
        let mut doc = store_doc();
        let root = doc.root();
        assert!(matches!(doc.remove(root), Err(XmlError::InvalidTreeOp(_))));
    }

    #[test]
    fn stale_ids_are_rejected() {
        let mut doc = store_doc();
        let victim = doc.children(doc.root()).unwrap()[0];
        doc.remove(victim).unwrap();
        assert!(matches!(doc.node(victim), Err(XmlError::StaleNode(_))));
        assert!(matches!(doc.remove(victim), Err(XmlError::StaleNode(_))));
    }

    #[test]
    fn rename_returns_old_label() {
        let mut doc = store_doc();
        let p0 = doc.children(doc.root()).unwrap()[0];
        let old = doc.rename(p0, "item").unwrap();
        assert_eq!(doc.interner().resolve(old), "product");
        assert_eq!(doc.label_str(p0).unwrap(), "item");
    }

    #[test]
    fn rename_text_fails() {
        let mut doc = Document::new("r");
        let t = doc
            .insert_fragment(doc.root(), &Fragment::text("x"), InsertPos::Into)
            .unwrap();
        assert!(matches!(
            doc.rename(t, "y"),
            Err(XmlError::KindMismatch { .. })
        ));
    }

    #[test]
    fn change_value_on_element_replaces_text_child() {
        let mut doc = store_doc();
        let p0 = doc.children(doc.root()).unwrap()[0];
        let price_sym = doc.interner().get("price").unwrap();
        let price = doc.child_by_label(p0, price_sym).unwrap().unwrap();
        let old = doc.change_value(price, "99.99").unwrap();
        assert_eq!(old, "120.00");
        assert_eq!(doc.text_of(price).unwrap(), "99.99");
    }

    #[test]
    fn change_value_creates_text_when_absent() {
        let mut doc = Document::new("r");
        let e = doc
            .insert_element(doc.root(), "empty", InsertPos::Into)
            .unwrap();
        let old = doc.change_value(e, "now").unwrap();
        assert_eq!(old, "");
        assert_eq!(doc.text_of(e).unwrap(), "now");
        doc.check_integrity().unwrap();
    }

    #[test]
    fn transpose_swaps_subtrees() {
        let mut doc = store_doc();
        let root = doc.root();
        let kids = doc.children(root).unwrap().to_vec();
        doc.transpose(kids[0], kids[1]).unwrap();
        let after = doc.children(root).unwrap();
        assert_eq!(after[0], kids[1]);
        assert_eq!(after[1], kids[0]);
        doc.check_integrity().unwrap();
        // Transposing back restores the original order.
        doc.transpose(kids[0], kids[1]).unwrap();
        assert_eq!(doc.children(root).unwrap(), &kids[..]);
    }

    #[test]
    fn transpose_with_ancestor_fails() {
        let doc_err = {
            let mut doc = store_doc();
            let root = doc.root();
            let p0 = doc.children(root).unwrap()[0];
            let id_child = doc.children(p0).unwrap()[0];
            doc.transpose(p0, id_child).unwrap_err()
        };
        assert!(matches!(doc_err, XmlError::InvalidTreeOp(_)));
    }

    #[test]
    fn transpose_self_is_noop() {
        let mut doc = store_doc();
        let p0 = doc.children(doc.root()).unwrap()[0];
        let before = doc.to_xml();
        doc.transpose(p0, p0).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn label_path_skips_text() {
        let doc = store_doc();
        let p0 = doc.children(doc.root()).unwrap()[0];
        let id_sym = doc.interner().get("id").unwrap();
        let id_node = doc.child_by_label(p0, id_sym).unwrap().unwrap();
        let text = doc.children(id_node).unwrap()[0];
        let path = doc.label_path(text).unwrap();
        let strs: Vec<_> = path.iter().map(|&s| doc.interner().resolve(s)).collect();
        assert_eq!(strs, vec!["products", "product", "id"]);
    }

    #[test]
    fn ancestors_nearest_first() {
        let doc = store_doc();
        let p0 = doc.children(doc.root()).unwrap()[0];
        let id_node = doc.children(p0).unwrap()[0];
        let anc = doc.ancestors(id_node).unwrap();
        assert_eq!(anc, vec![p0, doc.root()]);
    }

    #[test]
    fn fragment_counts() {
        let f = Fragment::elem(
            "product",
            vec![
                Fragment::elem_text("id", "13"),
                Fragment::attr("cur", "USD"),
            ],
        );
        // product + id + "13" + cur = 4
        assert_eq!(f.node_count(), 4);
        assert!(f.byte_size() > 0);
        assert_eq!(f.label(), Some("product"));
        assert_eq!(Fragment::text("x").label(), None);
    }

    #[test]
    fn from_fragment_round_trip() {
        let f = Fragment::elem(
            "people",
            vec![Fragment::elem(
                "person",
                vec![
                    Fragment::elem_text("id", "22"),
                    Fragment::elem_text("name", "Patricia"),
                ],
            )],
        );
        let doc = Document::from_fragment(&f).unwrap();
        assert_eq!(doc.to_fragment(doc.root()).unwrap(), f);
        assert!(Document::from_fragment(&Fragment::text("x")).is_err());
    }

    #[test]
    fn descendants_preorder() {
        let doc = store_doc();
        let order: Vec<String> = doc
            .descendants(doc.root())
            .map(|n| {
                if doc.node(n).unwrap().is_text() {
                    format!("#{}", doc.value(n).unwrap().unwrap())
                } else {
                    doc.label_str(n).unwrap().to_owned()
                }
            })
            .collect();
        assert_eq!(order[0], "products");
        assert_eq!(order[1], "product");
        assert_eq!(order[2], "id");
        assert_eq!(order[3], "#4");
    }
}
