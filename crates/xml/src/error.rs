//! Error type shared by the XML substrate.

use std::fmt;

/// Result alias used throughout `dtx-xml`.
pub type XmlResult<T> = Result<T, XmlError>;

/// Errors raised by the XML document model and parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The parser encountered malformed input. Carries a byte offset and a
    /// human-readable description.
    Parse { offset: usize, message: String },
    /// An operation referenced a [`crate::NodeId`] that is not live in the
    /// document (never allocated, or already removed).
    StaleNode(u32),
    /// An operation would have violated the tree shape (e.g. transposing a
    /// node under its own descendant, removing the root).
    InvalidTreeOp(String),
    /// A value operation (`change`) was applied to a node kind that carries
    /// no value.
    KindMismatch {
        expected: &'static str,
        found: &'static str,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            XmlError::StaleNode(id) => write!(f, "node id {id} is not live in this document"),
            XmlError::InvalidTreeOp(msg) => write!(f, "invalid tree operation: {msg}"),
            XmlError::KindMismatch { expected, found } => {
                write!(f, "node kind mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = XmlError::Parse {
            offset: 12,
            message: "unexpected '<'".into(),
        };
        assert_eq!(e.to_string(), "XML parse error at byte 12: unexpected '<'");
        assert_eq!(
            XmlError::StaleNode(7).to_string(),
            "node id 7 is not live in this document"
        );
        let e = XmlError::KindMismatch {
            expected: "text",
            found: "element",
        };
        assert!(e.to_string().contains("expected text"));
    }
}
