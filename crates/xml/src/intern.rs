//! Label interning.
//!
//! XML element and attribute names repeat massively (an XMark document has
//! millions of nodes but only ~80 distinct labels). DTX's DataGuide and lock
//! table operate on *label paths*, so comparing labels is on the hot path of
//! every lock acquisition. Interning maps each distinct label to a dense
//! `u32` [`Symbol`] once, making all later comparisons integer compares and
//! all label storage 4 bytes.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A dense handle for an interned string.
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them. The DataGuide layer guarantees that all sites fragmenting the same
/// logical document use a shared interner snapshot, so symbols can travel in
/// messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Index form, for direct table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string interner with stable indices.
///
/// `resolve` is O(1); `intern` is a single hash lookup. The interner never
/// forgets a label — XML vocabularies are tiny compared to documents, so
/// unbounded growth is not a practical concern.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Looks up a symbol without interning. Returns `None` when `s` was
    /// never interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner (index out of range).
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("person");
        let b = i.intern("name");
        let a2 = i.intern("person");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let labels = ["site", "people", "person", "id", "name", "price"];
        let syms: Vec<_> = labels.iter().map(|l| i.intern(l)).collect();
        for (sym, label) in syms.iter().zip(labels.iter()) {
            assert_eq!(i.resolve(*sym), *label);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("absent").is_none());
        i.intern("present");
        assert!(i.get("present").is_some());
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let collected: Vec<_> = i.iter().map(|(s, l)| (s.0, l.to_owned())).collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
