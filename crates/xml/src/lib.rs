//! # dtx-xml — in-memory XML document model for DTX
//!
//! This crate is the lowest substrate of the DTX reproduction. The paper
//! (Moreira et al., *A distributed concurrency control mechanism for XML
//! data*) handles "XML data handling ... in the main memory": documents are
//! loaded from a storage structure, manipulated in memory, and written back.
//! This crate provides that in-memory representation:
//!
//! * [`Document`] — an arena-based ordered tree of [`Node`]s with stable
//!   [`NodeId`]s, supporting the five update operations of the XDGL update
//!   language (*insert*, *remove*, *rename*, *change*, *transpose*);
//! * [`parse`] / [`Document::parse`] — a small, dependency-free XML parser
//!   covering the subset XMark-style documents use (elements, attributes,
//!   text, comments, CDATA, processing instructions, entities);
//! * [`Serializer`] — the inverse transformation, used by the storage
//!   substrate to persist documents;
//! * [`Interner`] — per-document label interning so that structural
//!   operations (DataGuide construction, lock placement) compare `u32`
//!   symbols instead of strings.
//!
//! The crate is deliberately free of any concurrency-control logic; it is a
//! plain ordered-tree library that the DataGuide, locking and transaction
//! layers build upon.

pub mod document;
pub mod error;
pub mod intern;
pub mod node;
pub mod parser;
pub mod serializer;
pub mod stream;

pub use document::{Document, Fragment, InsertPos, Removed};
pub use error::{XmlError, XmlResult};
pub use intern::{Interner, Symbol};
pub use node::{Node, NodeId, NodeKind};
pub use parser::parse;
pub use serializer::Serializer;
pub use stream::{
    ChunkAssembler, ChunkedWriter, EventSink, TreeBuilder, XmlEvent, XmlTokenizer, XmlWriter,
};
