//! Node identity and payload types for the arena tree.

use crate::intern::Symbol;
use serde::{Deserialize, Serialize};

/// Stable identifier of a node inside one [`crate::Document`] arena.
///
/// Ids are dense indices into the arena. Removed nodes leave their slot
/// tombstoned; ids are never reused within a document's lifetime, so an id
/// held across an update either still refers to the same logical node or is
/// reported stale — exactly the behaviour a lock manager needs when a
/// transaction's undo log replays against the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form, for direct arena addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The payload kind of a node.
///
/// The model follows the simplified DOM the XDGL protocol operates on:
/// element nodes carry a label; attribute nodes carry a label and a value
/// and are ordered before element children; text nodes carry only a value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An element, e.g. `<person>`. The label symbol resolves via the
    /// document's interner.
    Element { label: Symbol },
    /// An attribute, e.g. `id="4"`.
    Attribute { label: Symbol, value: String },
    /// A text node.
    Text { value: String },
}

impl NodeKind {
    /// Short static name of the kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            NodeKind::Element { .. } => "element",
            NodeKind::Attribute { .. } => "attribute",
            NodeKind::Text { .. } => "text",
        }
    }

    /// The label symbol for labelled kinds (element, attribute).
    pub fn label(&self) -> Option<Symbol> {
        match self {
            NodeKind::Element { label } | NodeKind::Attribute { label, .. } => Some(*label),
            NodeKind::Text { .. } => None,
        }
    }

    /// The textual value for valued kinds (attribute, text).
    pub fn value(&self) -> Option<&str> {
        match self {
            NodeKind::Attribute { value, .. } | NodeKind::Text { value } => Some(value),
            NodeKind::Element { .. } => None,
        }
    }
}

/// One node of the arena tree.
///
/// Children are stored as an ordered `Vec<NodeId>`; sibling order is
/// document order, which the XDGL insert modes (*into*, *before*, *after*)
/// depend on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Payload.
    pub kind: NodeKind,
    /// Parent node; `None` only for the root element.
    pub parent: Option<NodeId>,
    /// Ordered children (attributes first, then elements/text in document
    /// order).
    pub children: Vec<NodeId>,
}

impl Node {
    /// Creates a parentless element node (parent fixed up by the arena).
    pub fn element(label: Symbol) -> Self {
        Node {
            kind: NodeKind::Element { label },
            parent: None,
            children: Vec::new(),
        }
    }

    /// Creates a parentless attribute node.
    pub fn attribute(label: Symbol, value: impl Into<String>) -> Self {
        Node {
            kind: NodeKind::Attribute {
                label,
                value: value.into(),
            },
            parent: None,
            children: Vec::new(),
        }
    }

    /// Creates a parentless text node.
    pub fn text(value: impl Into<String>) -> Self {
        Node {
            kind: NodeKind::Text {
                value: value.into(),
            },
            parent: None,
            children: Vec::new(),
        }
    }

    /// True if this node is an element.
    pub fn is_element(&self) -> bool {
        matches!(self.kind, NodeKind::Element { .. })
    }

    /// True if this node is an attribute.
    pub fn is_attribute(&self) -> bool {
        matches!(self.kind, NodeKind::Attribute { .. })
    }

    /// True if this node is a text node.
    pub fn is_text(&self) -> bool {
        matches!(self.kind, NodeKind::Text { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessors() {
        let e = NodeKind::Element { label: Symbol(3) };
        assert_eq!(e.label(), Some(Symbol(3)));
        assert_eq!(e.value(), None);
        assert_eq!(e.kind_name(), "element");

        let a = NodeKind::Attribute {
            label: Symbol(1),
            value: "4".into(),
        };
        assert_eq!(a.label(), Some(Symbol(1)));
        assert_eq!(a.value(), Some("4"));

        let t = NodeKind::Text {
            value: "Mouse".into(),
        };
        assert_eq!(t.label(), None);
        assert_eq!(t.value(), Some("Mouse"));
    }

    #[test]
    fn constructors_set_kind() {
        assert!(Node::element(Symbol(0)).is_element());
        assert!(Node::attribute(Symbol(0), "x").is_attribute());
        assert!(Node::text("x").is_text());
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(42).to_string(), "n42");
    }
}
