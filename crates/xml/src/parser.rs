//! XML parsing: the tree-building consumer of the streaming tokenizer.
//!
//! Covers the subset that XMark-style documents and the paper's examples
//! use: elements, attributes, character data, CDATA sections, comments,
//! processing instructions, an XML declaration, and the five predefined
//! entities (`&lt; &gt; &amp; &apos; &quot;`) plus numeric character
//! references (restricted to valid XML characters). Namespaces are
//! treated lexically (prefixes stay part of the label), DTDs are skipped,
//! and mixed content is preserved.
//!
//! Since the streaming ingestion subsystem landed, this module is one
//! line of composition: [`parse`] pumps [`crate::stream::XmlTokenizer`]
//! into [`crate::stream::TreeBuilder`]. The historical recursive-descent
//! parser is gone; every consumer of parsed trees rides the same event
//! pipeline the streaming paths use, so tokenizer fixes (CDATA, comment,
//! character-reference edge cases) apply everywhere at once.

use crate::document::Document;
use crate::error::XmlResult;
use crate::stream::{pump, TreeBuilder, XmlTokenizer};

/// Parses an XML string into a [`Document`] by running the streaming
/// tokenizer into a tree-building event sink.
pub fn parse(input: &str) -> XmlResult<Document> {
    let mut tokenizer = XmlTokenizer::new(input);
    let mut builder = TreeBuilder::new();
    pump(&mut tokenizer, &mut builder)?;
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::XmlError;

    #[test]
    fn parses_minimal_document() {
        let doc = parse("<r/>").unwrap();
        assert_eq!(doc.label_str(doc.root()).unwrap(), "r");
        assert_eq!(doc.node_count(), 1);
    }

    #[test]
    fn parses_the_paper_example() {
        let doc = parse(
            r#"<?xml version="1.0"?>
            <people>
              <person><id>4</id><name>John</name></person>
              <person><id>22</id><name>Patricia</name></person>
            </people>"#,
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(doc.label_str(root).unwrap(), "people");
        let persons = doc.children(root).unwrap();
        assert_eq!(persons.len(), 2);
        assert_eq!(doc.text_of(persons[1]).unwrap(), "22Patricia");
        doc.check_integrity().unwrap();
    }

    #[test]
    fn parses_attributes() {
        let doc = parse(r#"<item id="13" currency='USD'>Mouse</item>"#).unwrap();
        let root = doc.root();
        let id = doc.interner().get("id").unwrap();
        let cur = doc.interner().get("currency").unwrap();
        assert_eq!(doc.attribute(root, id).unwrap(), Some("13"));
        assert_eq!(doc.attribute(root, cur).unwrap(), Some("USD"));
        assert_eq!(doc.text_of(root).unwrap(), "Mouse");
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse("<t>a &lt;&amp;&gt; b &#65;&#x42;</t>").unwrap();
        assert_eq!(doc.text_of(doc.root()).unwrap(), "a <&> b AB");
    }

    #[test]
    fn entity_in_attribute() {
        let doc = parse(r#"<t a="x&quot;y&apos;z"/>"#).unwrap();
        let a = doc.interner().get("a").unwrap();
        assert_eq!(doc.attribute(doc.root(), a).unwrap(), Some("x\"y'z"));
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse("<t><![CDATA[<not><parsed>&amp;]]></t>").unwrap();
        assert_eq!(doc.text_of(doc.root()).unwrap(), "<not><parsed>&amp;");
    }

    #[test]
    fn comments_and_pis_skipped() {
        let doc = parse("<!-- top --><t><!-- in -->x<?pi data?></t><!-- tail -->").unwrap();
        assert_eq!(doc.text_of(doc.root()).unwrap(), "x");
        assert_eq!(doc.node_count(), 2);
    }

    #[test]
    fn doctype_skipped() {
        let doc =
            parse("<!DOCTYPE site SYSTEM \"auction.dtd\" [ <!ENTITY x \"y\"> ]><site/>").unwrap();
        assert_eq!(doc.label_str(doc.root()).unwrap(), "site");
    }

    #[test]
    fn mismatched_end_tag_is_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::Parse { .. }));
        assert!(err.to_string().contains("mismatched end tag"));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn unterminated_inputs_are_errors() {
        for bad in [
            "<a>",
            "<a",
            "<a b=>",
            "<a b=\"x>",
            "<t>&unknown;</t>",
            "<t>&#xZZ;</t>",
        ] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn mixed_content_order_preserved() {
        let doc = parse("<p>one<b>two</b>three</p>").unwrap();
        let kids = doc.children(doc.root()).unwrap();
        assert_eq!(kids.len(), 3);
        assert_eq!(doc.value(kids[0]).unwrap(), Some("one"));
        assert_eq!(doc.label_str(kids[1]).unwrap(), "b");
        assert_eq!(doc.value(kids[2]).unwrap(), Some("three"));
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let doc = parse("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        assert_eq!(doc.children(doc.root()).unwrap().len(), 2);
    }
}
