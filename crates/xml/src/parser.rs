//! A small, dependency-free XML parser.
//!
//! Covers the subset that XMark-style documents and the paper's examples
//! use: elements, attributes, character data, CDATA sections, comments,
//! processing instructions, an XML declaration, and the five predefined
//! entities (`&lt; &gt; &amp; &apos; &quot;`) plus numeric character
//! references. Namespaces are treated lexically (prefixes stay part of the
//! label), DTDs are skipped, and mixed content is preserved.
//!
//! The parser is a single-pass recursive-descent scanner over the input
//! bytes; it allocates only for labels (interned once) and text values.

use crate::document::Document;
use crate::error::{XmlError, XmlResult};
use crate::node::{Node, NodeId};

/// Parses an XML string into a [`Document`].
pub fn parse(input: &str) -> XmlResult<Document> {
    Parser::new(input).document()
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> XmlResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips misc items allowed outside the root: whitespace, comments,
    /// PIs, the XML declaration, and a DOCTYPE.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> XmlResult<()> {
        while self.pos < self.input.len() {
            if self.eat(end) {
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated construct, expected {end:?}")))
    }

    fn skip_doctype(&mut self) -> XmlResult<()> {
        // Skip to the matching '>' accounting for an optional [...] block.
        let mut depth = 0usize;
        while let Some(b) = self.bump() {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err("unterminated DOCTYPE"))
    }

    fn document(&mut self) -> XmlResult<Document> {
        self.skip_misc()?;
        if self.peek() != Some(b'<') {
            return Err(self.err("expected root element"));
        }
        let doc = self.root_element()?;
        self.skip_misc()?;
        if self.pos != self.input.len() {
            return Err(self.err("trailing content after root element"));
        }
        Ok(doc)
    }

    fn name(&mut self) -> XmlResult<&'a str> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        // Safety: we only advanced over ASCII name bytes.
        Ok(std::str::from_utf8(&self.input[start..self.pos]).expect("ascii name"))
    }

    fn attr_value(&mut self) -> XmlResult<String> {
        let quote = self
            .bump()
            .filter(|&q| q == b'"' || q == b'\'')
            .ok_or_else(|| self.err("expected quoted attribute value"))?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'&') => out.push(self.entity()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in attribute value"))?,
                    );
                }
            }
        }
    }

    fn entity(&mut self) -> XmlResult<char> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid entity name"))?;
                self.pos += 1;
                return match name {
                    "lt" => Ok('<'),
                    "gt" => Ok('>'),
                    "amp" => Ok('&'),
                    "apos" => Ok('\''),
                    "quot" => Ok('"'),
                    _ if name.starts_with("#x") || name.starts_with("#X") => {
                        u32::from_str_radix(&name[2..], 16)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| self.err(format!("bad char reference &{name};")))
                    }
                    _ if name.starts_with('#') => name[1..]
                        .parse::<u32>()
                        .ok()
                        .and_then(char::from_u32)
                        .ok_or_else(|| self.err(format!("bad char reference &{name};"))),
                    _ => Err(self.err(format!("unknown entity &{name};"))),
                };
            }
            self.pos += 1;
        }
        Err(self.err("unterminated entity reference"))
    }

    fn root_element(&mut self) -> XmlResult<Document> {
        self.expect("<")?;
        let label = self.name()?.to_owned();
        let mut doc = Document::new(&label);
        let root = doc.root();
        self.element_rest(&mut doc, root)?;
        Ok(doc)
    }

    /// Parses attributes + content + end tag of the element whose start tag
    /// name has just been consumed, attaching everything under `elem`.
    fn element_rest(&mut self, doc: &mut Document, elem: NodeId) -> XmlResult<()> {
        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.expect("/>")?;
                    return Ok(());
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let name = self.name()?.to_owned();
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let value = self.attr_value()?;
                    let sym = doc.intern(&name);
                    attach(doc, elem, Node::attribute(sym, value))?;
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        self.content(doc, elem)?;
        // End tag: `content` stops right before `</`.
        self.expect("</")?;
        let end_name = self.name()?;
        let expected = doc.label_str(elem)?.to_owned();
        if end_name != expected {
            return Err(self.err(format!(
                "mismatched end tag: expected </{expected}>, found </{end_name}>"
            )));
        }
        self.skip_ws();
        self.expect(">")?;
        Ok(())
    }

    fn content(&mut self, doc: &mut Document, parent: NodeId) -> XmlResult<()> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unexpected end of input inside element")),
                Some(b'<') => {
                    if self.starts_with("</") {
                        flush_text(doc, parent, &mut text)?;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.skip_until("-->")?;
                    } else if self.starts_with("<![CDATA[") {
                        self.pos += "<![CDATA[".len();
                        let start = self.pos;
                        while self.pos < self.input.len() && !self.starts_with("]]>") {
                            self.pos += 1;
                        }
                        if self.pos >= self.input.len() {
                            return Err(self.err("unterminated CDATA section"));
                        }
                        text.push_str(
                            std::str::from_utf8(&self.input[start..self.pos])
                                .map_err(|_| self.err("invalid UTF-8 in CDATA"))?,
                        );
                        self.pos += "]]>".len();
                    } else if self.starts_with("<?") {
                        self.skip_until("?>")?;
                    } else {
                        flush_text(doc, parent, &mut text)?;
                        self.pos += 1; // '<'
                        let label = self.name()?.to_owned();
                        let sym = doc.intern(&label);
                        let child = attach(doc, parent, Node::element(sym))?;
                        self.element_rest(doc, child)?;
                    }
                }
                Some(b'&') => text.push(self.entity()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    text.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in text"))?,
                    );
                }
            }
        }
    }
}

/// Attaches a freshly built node under `parent` via the public fragment
/// API-adjacent internals. We go through `insert_fragment` equivalents to
/// keep arena bookkeeping in one place.
fn attach(doc: &mut Document, parent: NodeId, node: Node) -> XmlResult<NodeId> {
    use crate::document::{Fragment, InsertPos};
    let frag = match &node.kind {
        crate::node::NodeKind::Element { label } => Fragment::Element {
            label: doc.interner().resolve(*label).to_owned(),
            children: vec![],
        },
        crate::node::NodeKind::Attribute { label, value } => Fragment::Attribute {
            label: doc.interner().resolve(*label).to_owned(),
            value: value.clone(),
        },
        crate::node::NodeKind::Text { value } => Fragment::Text {
            value: value.clone(),
        },
    };
    doc.insert_fragment(parent, &frag, InsertPos::Into)
}

fn flush_text(doc: &mut Document, parent: NodeId, text: &mut String) -> XmlResult<()> {
    // Whitespace-only runs between elements are formatting noise; keep
    // text that contains any non-whitespace character.
    if !text.trim().is_empty() {
        attach(doc, parent, Node::text(std::mem::take(text)))?;
    } else {
        text.clear();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let doc = parse("<r/>").unwrap();
        assert_eq!(doc.label_str(doc.root()).unwrap(), "r");
        assert_eq!(doc.node_count(), 1);
    }

    #[test]
    fn parses_the_paper_example() {
        let doc = parse(
            r#"<?xml version="1.0"?>
            <people>
              <person><id>4</id><name>John</name></person>
              <person><id>22</id><name>Patricia</name></person>
            </people>"#,
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(doc.label_str(root).unwrap(), "people");
        let persons = doc.children(root).unwrap();
        assert_eq!(persons.len(), 2);
        assert_eq!(doc.text_of(persons[1]).unwrap(), "22Patricia");
        doc.check_integrity().unwrap();
    }

    #[test]
    fn parses_attributes() {
        let doc = parse(r#"<item id="13" currency='USD'>Mouse</item>"#).unwrap();
        let root = doc.root();
        let id = doc.interner().get("id").unwrap();
        let cur = doc.interner().get("currency").unwrap();
        assert_eq!(doc.attribute(root, id).unwrap(), Some("13"));
        assert_eq!(doc.attribute(root, cur).unwrap(), Some("USD"));
        assert_eq!(doc.text_of(root).unwrap(), "Mouse");
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse("<t>a &lt;&amp;&gt; b &#65;&#x42;</t>").unwrap();
        assert_eq!(doc.text_of(doc.root()).unwrap(), "a <&> b AB");
    }

    #[test]
    fn entity_in_attribute() {
        let doc = parse(r#"<t a="x&quot;y&apos;z"/>"#).unwrap();
        let a = doc.interner().get("a").unwrap();
        assert_eq!(doc.attribute(doc.root(), a).unwrap(), Some("x\"y'z"));
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse("<t><![CDATA[<not><parsed>&amp;]]></t>").unwrap();
        assert_eq!(doc.text_of(doc.root()).unwrap(), "<not><parsed>&amp;");
    }

    #[test]
    fn comments_and_pis_skipped() {
        let doc = parse("<!-- top --><t><!-- in -->x<?pi data?></t><!-- tail -->").unwrap();
        assert_eq!(doc.text_of(doc.root()).unwrap(), "x");
        assert_eq!(doc.node_count(), 2);
    }

    #[test]
    fn doctype_skipped() {
        let doc =
            parse("<!DOCTYPE site SYSTEM \"auction.dtd\" [ <!ENTITY x \"y\"> ]><site/>").unwrap();
        assert_eq!(doc.label_str(doc.root()).unwrap(), "site");
    }

    #[test]
    fn mismatched_end_tag_is_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::Parse { .. }));
        assert!(err.to_string().contains("mismatched end tag"));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse("<a/>junk").is_err());
    }

    #[test]
    fn unterminated_inputs_are_errors() {
        for bad in [
            "<a>",
            "<a",
            "<a b=>",
            "<a b=\"x>",
            "<t>&unknown;</t>",
            "<t>&#xZZ;</t>",
        ] {
            assert!(parse(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn mixed_content_order_preserved() {
        let doc = parse("<p>one<b>two</b>three</p>").unwrap();
        let kids = doc.children(doc.root()).unwrap();
        assert_eq!(kids.len(), 3);
        assert_eq!(doc.value(kids[0]).unwrap(), Some("one"));
        assert_eq!(doc.label_str(kids[1]).unwrap(), "b");
        assert_eq!(doc.value(kids[2]).unwrap(), Some("three"));
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let doc = parse("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        assert_eq!(doc.children(doc.root()).unwrap().len(), 2);
    }
}
