//! Document → XML text serialization.
//!
//! The output round-trips through [`crate::parser::parse`] (modulo
//! formatting whitespace, which the parser drops). The storage substrate
//! uses this to persist documents; the benchmark harness uses byte counts
//! from here to size fragments.

use crate::document::Document;
use crate::node::{NodeId, NodeKind};

/// Serializer over a borrowed document.
pub struct Serializer<'a> {
    doc: &'a Document,
    indent: Option<usize>,
}

impl<'a> Serializer<'a> {
    /// Compact serializer (no added whitespace).
    pub fn new(doc: &'a Document) -> Self {
        Serializer { doc, indent: None }
    }

    /// Pretty-printing serializer with `width`-space indentation.
    pub fn pretty(doc: &'a Document, width: usize) -> Self {
        Serializer {
            doc,
            indent: Some(width),
        }
    }

    /// Serializes the whole document.
    pub fn document(&self) -> String {
        let mut out = String::new();
        self.node_into(self.doc.root(), 0, &mut out);
        out
    }

    /// Serializes the subtree rooted at `id`.
    pub fn subtree(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.node_into(id, 0, &mut out);
        out
    }

    fn pad(&self, depth: usize, out: &mut String) {
        if let Some(w) = self.indent {
            if !out.is_empty() {
                out.push('\n');
            }
            for _ in 0..depth * w {
                out.push(' ');
            }
        }
    }

    fn node_into(&self, id: NodeId, depth: usize, out: &mut String) {
        let node = match self.doc.node(id) {
            Ok(n) => n,
            Err(_) => return,
        };
        match &node.kind {
            NodeKind::Element { label } => {
                self.pad(depth, out);
                let name = self.doc.interner().resolve(*label);
                out.push('<');
                out.push_str(name);
                let (attrs, content): (Vec<&NodeId>, Vec<&NodeId>) = node
                    .children
                    .iter()
                    .partition(|&&c| self.doc.node(c).map(|n| n.is_attribute()).unwrap_or(false));
                for &a in &attrs {
                    if let Ok(an) = self.doc.node(*a) {
                        if let NodeKind::Attribute { label, value } = &an.kind {
                            out.push(' ');
                            out.push_str(self.doc.interner().resolve(*label));
                            out.push_str("=\"");
                            escape_into(value, true, out);
                            out.push('"');
                        }
                    }
                }
                if content.is_empty() {
                    out.push_str("/>");
                } else {
                    out.push('>');
                    let only_text = content.len() == 1
                        && self
                            .doc
                            .node(*content[0])
                            .map(|n| n.is_text())
                            .unwrap_or(false);
                    for &c in &content {
                        if only_text {
                            // Keep `<id>4</id>` on one line even when pretty.
                            if let Ok(n) = self.doc.node(*c) {
                                if let NodeKind::Text { value } = &n.kind {
                                    escape_into(value, false, out);
                                }
                            }
                        } else {
                            self.node_into(*c, depth + 1, out);
                        }
                    }
                    if !only_text {
                        self.pad(depth, out);
                    }
                    out.push_str("</");
                    out.push_str(name);
                    out.push('>');
                }
            }
            NodeKind::Attribute { label, value } => {
                // A detached attribute serialization (rare; used in debug).
                out.push_str(self.doc.interner().resolve(*label));
                out.push_str("=\"");
                escape_into(value, true, out);
                out.push('"');
            }
            NodeKind::Text { value } => {
                self.pad(depth, out);
                escape_into(value, false, out);
            }
        }
    }
}

/// Escapes XML-special characters. `in_attr` additionally escapes quotes.
fn escape_into(s: &str, in_attr: bool, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attr => out.push_str("&quot;"),
            '\'' if in_attr => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trip_compact() {
        let src = r#"<products><product id="4"><description>Monitor &amp; stand</description><price>120.00</price></product></products>"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
    }

    #[test]
    fn empty_element_self_closes() {
        let doc = parse("<r><empty/></r>").unwrap();
        assert_eq!(doc.to_xml(), "<r><empty/></r>");
    }

    #[test]
    fn attribute_values_escaped() {
        let mut doc = Document::new("r");
        let sym = doc.intern("a");
        let root = doc.root();
        doc.insert_fragment(
            root,
            &crate::document::Fragment::Attribute {
                label: "a".into(),
                value: "x\"<>&".into(),
            },
            crate::document::InsertPos::Into,
        )
        .unwrap();
        let _ = sym;
        let xml = doc.to_xml();
        assert_eq!(xml, r#"<r a="x&quot;&lt;&gt;&amp;"/>"#);
        // And it reparses to the same value.
        let doc2 = parse(&xml).unwrap();
        let a = doc2.interner().get("a").unwrap();
        assert_eq!(doc2.attribute(doc2.root(), a).unwrap(), Some("x\"<>&"));
    }

    #[test]
    fn pretty_printing_indents() {
        let doc = parse("<r><a><b>x</b></a></r>").unwrap();
        let pretty = Serializer::pretty(&doc, 2).document();
        assert_eq!(pretty, "<r>\n  <a>\n    <b>x</b>\n  </a>\n</r>");
        // Pretty output reparses to an equivalent document.
        let doc2 = parse(&pretty).unwrap();
        assert_eq!(doc2.to_xml(), doc.to_xml());
    }

    #[test]
    fn subtree_serialization() {
        let doc = parse("<r><a>1</a><b>2</b></r>").unwrap();
        let b = doc.children(doc.root()).unwrap()[1];
        assert_eq!(Serializer::new(&doc).subtree(b), "<b>2</b>");
    }

    #[test]
    fn parse_serialize_fixpoint() {
        // serialize(parse(x)) must be a fixpoint: applying again is stable.
        let src = "<site><people><person id=\"p0\"><name>A &amp; B</name></person></people></site>";
        let once = parse(src).unwrap().to_xml();
        let twice = parse(&once).unwrap().to_xml();
        assert_eq!(once, twice);
    }
}
