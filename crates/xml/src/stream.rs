//! Pull-based streaming XML events: the ingestion substrate.
//!
//! Every ingestion path used to materialize whole documents as strings
//! (the parser took a `&str` and built the full tree, the XMark generator
//! rendered one giant `String`, DataGuide construction re-walked the
//! finished tree). This module replaces that with a SAX-style event
//! vocabulary with **bounded memory per event**:
//!
//! * [`XmlEvent`] — `StartElement` / `Attribute` / `Text` / `EndElement`,
//!   borrowing from the input where possible (`Cow`);
//! * [`XmlTokenizer`] — a pull tokenizer over a `&str` that yields events
//!   without building a tree; its transient state is O(element depth);
//! * [`EventSink`] — the consumer side: anything that can be fed events
//!   (tree builders, guide builders, serializers, fragment splitters);
//! * [`TreeBuilder`] — the sink that builds a [`Document`];
//!   [`crate::parser::parse`] is exactly `XmlTokenizer` → `TreeBuilder`;
//! * [`XmlWriter`] — the sink that serializes events back to compact XML
//!   (the streaming XMark generator writes through this);
//! * [`validate`] — well-formedness checking in O(depth) memory, for
//!   stores that want to reject corrupt documents without paying for a
//!   tree.
//!
//! Producers and consumers meet only at the event vocabulary, so any
//! producer (tokenizer, generator, network stream) can drive any consumer
//! (document, DataGuide, serializer, splitter) — or several at once via
//! [`Tee`] — in one pass.

use crate::document::Document;
use crate::error::{XmlError, XmlResult};
use crate::node::NodeId;
use std::borrow::Cow;

/// One SAX-style event of an XML document stream.
///
/// Invariants producers must uphold (the tokenizer does, and sinks may
/// rely on them):
/// * events form a balanced element tree with a single root;
/// * `Attribute` events appear only directly after their element's
///   `StartElement` (before any `Text`/child `StartElement`);
/// * adjacent `Text` events belong to the same text run (consumers that
///   care about text nodes merge them — the tokenizer emits entity
///   references and CDATA sections as separate events to keep per-event
///   memory bounded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent<'a> {
    /// An element opens.
    StartElement {
        /// Element label.
        name: Cow<'a, str>,
    },
    /// An attribute of the most recently opened element.
    Attribute {
        /// Attribute label.
        name: Cow<'a, str>,
        /// Decoded attribute value.
        value: Cow<'a, str>,
    },
    /// A run (or partial run) of character data.
    Text {
        /// Decoded text content.
        value: Cow<'a, str>,
    },
    /// The most recently opened element closes.
    EndElement {
        /// Element label (matches the corresponding `StartElement`).
        name: Cow<'a, str>,
    },
}

impl<'a> XmlEvent<'a> {
    /// A `StartElement` with a borrowed/owned name.
    pub fn start(name: impl Into<Cow<'a, str>>) -> Self {
        XmlEvent::StartElement { name: name.into() }
    }

    /// An `Attribute` event.
    pub fn attr(name: impl Into<Cow<'a, str>>, value: impl Into<Cow<'a, str>>) -> Self {
        XmlEvent::Attribute {
            name: name.into(),
            value: value.into(),
        }
    }

    /// A `Text` event.
    pub fn text(value: impl Into<Cow<'a, str>>) -> Self {
        XmlEvent::Text {
            value: value.into(),
        }
    }

    /// An `EndElement` event.
    pub fn end(name: impl Into<Cow<'a, str>>) -> Self {
        XmlEvent::EndElement { name: name.into() }
    }

    /// Approximate serialized size contribution of this event in bytes
    /// (used by size-balancing consumers like the fragment splitter).
    pub fn byte_size(&self) -> usize {
        match self {
            XmlEvent::StartElement { name } => name.len() + 2,
            XmlEvent::Attribute { name, value } => name.len() + value.len() + 4,
            XmlEvent::Text { value } => value.len(),
            XmlEvent::EndElement { name } => name.len() + 3,
        }
    }
}

/// A consumer of XML events.
///
/// Sinks receive events in document order from any producer (tokenizer,
/// generator, network). Errors abort the stream.
pub trait EventSink {
    /// Consumes one event.
    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()>;
}

/// Feeds both inner sinks every event (single-pass fan-out: e.g. build a
/// [`Document`] and its DataGuide from one generator run).
pub struct Tee<'s, A: EventSink, B: EventSink> {
    /// First sink.
    pub a: &'s mut A,
    /// Second sink.
    pub b: &'s mut B,
}

impl<'s, A: EventSink, B: EventSink> Tee<'s, A, B> {
    /// Couples two sinks.
    pub fn new(a: &'s mut A, b: &'s mut B) -> Self {
        Tee { a, b }
    }
}

impl<A: EventSink, B: EventSink> EventSink for Tee<'_, A, B> {
    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        self.a.event(ev)?;
        self.b.event(ev)
    }
}

/// A sink that discards every event (used by [`validate`]).
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&mut self, _ev: &XmlEvent<'_>) -> XmlResult<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Before the root element (XML declaration, DOCTYPE, comments, PIs).
    Prolog,
    /// Inside a start tag, emitting attributes.
    InTag,
    /// Inside element content.
    Content,
    /// After the root element closed (only misc allowed).
    Epilog,
}

/// Pull tokenizer: yields [`XmlEvent`]s from a `&str` without building a
/// tree. Transient state is the open-element stack (O(depth)); emitted
/// events borrow from the input wherever no entity decoding is needed.
///
/// Covers the same subset as the tree parser — by construction: the tree
/// parser *is* this tokenizer plus [`TreeBuilder`]. Elements, attributes,
/// character data, CDATA sections, comments (including `--`-adjacent
/// text), processing instructions, an XML declaration, DOCTYPE skipping,
/// the five predefined entities and numeric character references
/// (rejecting code points that are not XML characters).
pub struct XmlTokenizer<'a> {
    input: &'a [u8],
    pos: usize,
    state: State,
    /// Open element names, slices of the input.
    stack: Vec<&'a str>,
    /// Set when the current tag is self-closing: after the attributes the
    /// synthetic `EndElement` is emitted from here.
    self_closing: bool,
    /// Resume mode ([`XmlTokenizer::resume`]): the input is one chunk of
    /// a larger document, so a clean end-of-input inside element content
    /// is a valid chunk boundary, not an error.
    partial: bool,
    /// Elements opened by *earlier* chunks that this chunk may close.
    /// Their names live with the chunk producer (see `ChunkAssembler`),
    /// not in this input, so end tags for them are emitted unvalidated —
    /// the assembler checks them against its own cross-chunk stack.
    inherited: usize,
}

impl<'a> XmlTokenizer<'a> {
    /// Tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        XmlTokenizer {
            input: input.as_bytes(),
            pos: 0,
            state: State::Prolog,
            stack: Vec::new(),
            self_closing: false,
            partial: false,
            inherited: 0,
        }
    }

    /// Tokenizer over one **chunk** of a document whose earlier chunks
    /// left `inherited` elements open (0 for the first chunk). The chunk
    /// must start and end at event boundaries — which is exactly what
    /// [`ChunkedWriter`] produces: tokenization starts in element content
    /// when `inherited > 0`, end tags may close inherited elements
    /// (name-checked by the caller, who owns the cross-chunk stack), and
    /// running out of input between events is a clean chunk end.
    pub fn resume(input: &'a str, inherited: usize) -> Self {
        XmlTokenizer {
            input: input.as_bytes(),
            pos: 0,
            state: if inherited > 0 {
                State::Content
            } else {
                State::Prolog
            },
            stack: Vec::new(),
            self_closing: false,
            partial: true,
            inherited,
        }
    }

    /// Current byte offset (error reporting, progress metrics).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Current element depth (including elements inherited from earlier
    /// chunks in resume mode).
    pub fn depth(&self) -> usize {
        self.stack.len() + self.inherited
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> XmlResult<()> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_until(&mut self, end: &str) -> XmlResult<()> {
        while self.pos < self.input.len() {
            if self.eat(end) {
                return Ok(());
            }
            self.pos += 1;
        }
        Err(self.err(format!("unterminated construct, expected {end:?}")))
    }

    fn skip_doctype(&mut self) -> XmlResult<()> {
        // Skip to the matching '>' accounting for an optional [...] block.
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            self.pos += 1;
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => return Ok(()),
                _ => {}
            }
        }
        Err(self.err("unterminated DOCTYPE"))
    }

    /// Skips misc items allowed outside the root: whitespace, comments,
    /// PIs, the XML declaration, and a DOCTYPE.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<!DOCTYPE") {
                self.pos += "<!DOCTYPE".len();
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips a comment. Text adjacent to `--` runs (e.g. `<!--a--->`,
    /// `<!--x--y-->`) terminates at the first `-->`, never panics, and
    /// never consumes past it.
    fn skip_comment(&mut self) -> XmlResult<()> {
        debug_assert!(self.starts_with("<!--"));
        self.pos += "<!--".len();
        self.skip_until("-->")
    }

    fn name(&mut self) -> XmlResult<&'a str> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        // Safety: we only advanced over ASCII name bytes.
        Ok(std::str::from_utf8(&self.input[start..self.pos]).expect("ascii name"))
    }

    /// Decodes one entity/character reference at the current `&`.
    fn entity(&mut self) -> XmlResult<char> {
        debug_assert_eq!(self.peek(), Some(b'&'));
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b';' {
                let name = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid entity name"))?;
                self.pos += 1;
                return match name {
                    "lt" => Ok('<'),
                    "gt" => Ok('>'),
                    "amp" => Ok('&'),
                    "apos" => Ok('\''),
                    "quot" => Ok('"'),
                    _ if name.starts_with("#x") || name.starts_with("#X") => {
                        char_ref(u32::from_str_radix(&name[2..], 16).ok())
                            .ok_or_else(|| self.err(format!("bad char reference &{name};")))
                    }
                    _ if name.starts_with('#') => char_ref(name[1..].parse::<u32>().ok())
                        .ok_or_else(|| self.err(format!("bad char reference &{name};"))),
                    _ => Err(self.err(format!("unknown entity &{name};"))),
                };
            }
            self.pos += 1;
        }
        Err(self.err("unterminated entity reference"))
    }

    fn attr_value(&mut self) -> XmlResult<Cow<'a, str>> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let start = self.pos;
        // Fast path: no entities → borrow the raw slice.
        let mut owned: Option<String> = None;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    let raw = &self.input[start..self.pos];
                    self.pos += 1;
                    return match owned {
                        Some(s) => Ok(Cow::Owned(s)),
                        None => {
                            Ok(Cow::Borrowed(std::str::from_utf8(raw).map_err(|_| {
                                self.err("invalid UTF-8 in attribute value")
                            })?))
                        }
                    };
                }
                Some(b'&') => {
                    if owned.is_none() {
                        let prefix = std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in attribute value"))?;
                        owned = Some(prefix.to_owned());
                    }
                    let ch = self.entity()?;
                    owned.as_mut().expect("just set").push(ch);
                    // Continue accumulating raw bytes into the owned buffer.
                    let run_start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote || b == b'&' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.input[run_start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in attribute value"))?;
                    owned.as_mut().expect("just set").push_str(run);
                }
                Some(_) => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Pulls the next event; `Ok(None)` at a well-formed end of input.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> XmlResult<Option<XmlEvent<'a>>> {
        loop {
            match self.state {
                State::Prolog => {
                    self.skip_misc()?;
                    if self.peek() != Some(b'<') {
                        return Err(self.err("expected root element"));
                    }
                    self.pos += 1;
                    let name = self.name()?;
                    self.stack.push(name);
                    self.state = State::InTag;
                    return Ok(Some(XmlEvent::start(name)));
                }
                State::InTag => {
                    if self.self_closing {
                        // The attributes of a self-closing tag are done;
                        // emit the synthetic end.
                        self.self_closing = false;
                        let name = self.stack.pop().expect("tag open");
                        self.state = if self.stack.is_empty() && self.inherited == 0 {
                            State::Epilog
                        } else {
                            State::Content
                        };
                        return Ok(Some(XmlEvent::end(name)));
                    }
                    self.skip_ws();
                    match self.peek() {
                        Some(b'/') => {
                            self.expect("/>")?;
                            self.self_closing = true;
                            // Loop around to emit the EndElement.
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            self.state = State::Content;
                        }
                        Some(_) => {
                            let name = self.name()?;
                            self.skip_ws();
                            self.expect("=")?;
                            self.skip_ws();
                            let value = self.attr_value()?;
                            return Ok(Some(XmlEvent::Attribute {
                                name: Cow::Borrowed(name),
                                value,
                            }));
                        }
                        None => return Err(self.err("unterminated start tag")),
                    }
                }
                State::Content => match self.peek() {
                    None => {
                        if self.partial {
                            // Resume mode: between events is a valid
                            // chunk boundary.
                            return Ok(None);
                        }
                        return Err(self.err("unexpected end of input inside element"));
                    }
                    Some(b'<') => {
                        if self.starts_with("</") {
                            self.pos += 2;
                            let end_name = self.name()?;
                            match self.stack.last() {
                                Some(expected) if end_name != *expected => {
                                    return Err(self.err(format!(
                                        "mismatched end tag: expected </{expected}>, \
                                         found </{end_name}>"
                                    )));
                                }
                                Some(_) => {}
                                None => {
                                    // Closes an element opened by an
                                    // earlier chunk; the caller's
                                    // cross-chunk stack validates the
                                    // name.
                                    debug_assert!(self.partial);
                                    if self.inherited == 0 {
                                        return Err(
                                            self.err(format!("unbalanced end tag </{end_name}>"))
                                        );
                                    }
                                }
                            }
                            self.skip_ws();
                            self.expect(">")?;
                            if self.stack.pop().is_none() {
                                self.inherited -= 1;
                            }
                            if self.stack.is_empty() && self.inherited == 0 {
                                self.state = State::Epilog;
                            }
                            return Ok(Some(XmlEvent::end(end_name)));
                        } else if self.starts_with("<!--") {
                            self.skip_comment()?;
                        } else if self.starts_with("<![CDATA[") {
                            self.pos += "<![CDATA[".len();
                            let start = self.pos;
                            while self.pos < self.input.len() && !self.starts_with("]]>") {
                                self.pos += 1;
                            }
                            if self.pos >= self.input.len() {
                                return Err(self.err("unterminated CDATA section"));
                            }
                            let raw = std::str::from_utf8(&self.input[start..self.pos])
                                .map_err(|_| self.err("invalid UTF-8 in CDATA"))?;
                            self.pos += "]]>".len();
                            if !raw.is_empty() {
                                return Ok(Some(XmlEvent::text(raw)));
                            }
                        } else if self.starts_with("<?") {
                            self.skip_until("?>")?;
                        } else {
                            self.pos += 1;
                            let name = self.name()?;
                            self.stack.push(name);
                            self.state = State::InTag;
                            return Ok(Some(XmlEvent::start(name)));
                        }
                    }
                    Some(b'&') => {
                        let ch = self.entity()?;
                        let mut s = String::with_capacity(4);
                        s.push(ch);
                        return Ok(Some(XmlEvent::Text {
                            value: Cow::Owned(s),
                        }));
                    }
                    Some(_) => {
                        let start = self.pos;
                        while let Some(b) = self.peek() {
                            if b == b'<' || b == b'&' {
                                break;
                            }
                            self.pos += 1;
                        }
                        let raw = std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in text"))?;
                        return Ok(Some(XmlEvent::text(raw)));
                    }
                },
                State::Epilog => {
                    self.skip_misc()?;
                    if self.pos != self.input.len() {
                        return Err(self.err("trailing content after root element"));
                    }
                    return Ok(None);
                }
            }
        }
    }
}

impl<'a> Iterator for XmlTokenizer<'a> {
    type Item = XmlResult<XmlEvent<'a>>;

    fn next(&mut self) -> Option<Self::Item> {
        XmlTokenizer::next(self).transpose()
    }
}

/// A code point is an XML 1.0 `Char`: tab/LF/CR, the BMP minus
/// surrogates/FFFE/FFFF, and the supplementary planes. The old parser
/// accepted any `char` (including NUL and other control characters that
/// no XML document may contain); the tokenizer rejects them.
fn char_ref(code: Option<u32>) -> Option<char> {
    let c = char::from_u32(code?)?;
    let ok = matches!(c, '\u{9}' | '\u{A}' | '\u{D}')
        || ('\u{20}'..='\u{D7FF}').contains(&c)
        || ('\u{E000}'..='\u{FFFD}').contains(&c)
        || c >= '\u{10000}';
    ok.then_some(c)
}

/// Drives every event of `tok` into `sink`.
pub fn pump(tok: &mut XmlTokenizer<'_>, sink: &mut impl EventSink) -> XmlResult<()> {
    while let Some(ev) = tok.next()? {
        sink.event(&ev)?;
    }
    Ok(())
}

/// Checks well-formedness of `input` in O(element depth) memory, without
/// building a tree (the storage substrate's ingest-time validation).
pub fn validate(input: &str) -> XmlResult<()> {
    pump(&mut XmlTokenizer::new(input), &mut NullSink)
}

// ---------------------------------------------------------------------
// TreeBuilder
// ---------------------------------------------------------------------

/// Builds a [`Document`] from an event stream.
///
/// Text handling matches the historical tree parser exactly: adjacent
/// text events merge into one text node, and runs that are pure
/// whitespace (formatting noise between elements) are dropped.
pub struct TreeBuilder {
    doc: Option<Document>,
    stack: Vec<NodeId>,
    text: String,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TreeBuilder {
            doc: None,
            stack: Vec::new(),
            text: String::new(),
        }
    }

    fn top(&self) -> XmlResult<NodeId> {
        self.stack
            .last()
            .copied()
            .ok_or_else(|| XmlError::InvalidTreeOp("event outside the root element".into()))
    }

    fn flush_text(&mut self) -> XmlResult<()> {
        if self.text.trim().is_empty() {
            self.text.clear();
            return Ok(());
        }
        let parent = self.top()?;
        let doc = self.doc.as_mut().expect("root open");
        doc.append_text(parent, std::mem::take(&mut self.text))?;
        Ok(())
    }

    /// Finishes the build; errors when the stream ended mid-element or
    /// never opened a root.
    pub fn finish(self) -> XmlResult<Document> {
        if !self.stack.is_empty() {
            return Err(XmlError::InvalidTreeOp(
                "event stream ended with open elements".into(),
            ));
        }
        self.doc
            .ok_or_else(|| XmlError::InvalidTreeOp("event stream contained no root".into()))
    }
}

impl EventSink for TreeBuilder {
    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        match ev {
            XmlEvent::StartElement { name } => match self.doc {
                None => {
                    let doc = Document::new(name);
                    self.stack.push(doc.root());
                    self.doc = Some(doc);
                }
                Some(_) => {
                    self.flush_text()?;
                    let parent = self.top()?;
                    let doc = self.doc.as_mut().expect("root open");
                    let id = doc.append_element(parent, name)?;
                    self.stack.push(id);
                }
            },
            XmlEvent::Attribute { name, value } => {
                let parent = self.top()?;
                let doc = self
                    .doc
                    .as_mut()
                    .ok_or_else(|| XmlError::InvalidTreeOp("attribute before root".into()))?;
                doc.append_attribute(parent, name, value.clone().into_owned())?;
            }
            XmlEvent::Text { value } => {
                // Merge adjacent text; flushed (or dropped as whitespace)
                // at the next structural event.
                self.text.push_str(value);
            }
            XmlEvent::EndElement { .. } => {
                self.flush_text()?;
                self.stack
                    .pop()
                    .ok_or_else(|| XmlError::InvalidTreeOp("unbalanced EndElement".into()))?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// XmlWriter
// ---------------------------------------------------------------------

/// Serializes an event stream to compact XML text.
///
/// Empty elements self-close (`<x/>`), matching [`crate::Serializer`];
/// writing through this sink and re-tokenizing yields the same events
/// back (modulo text-run splits).
pub struct XmlWriter {
    out: String,
    /// Names of open elements.
    stack: Vec<String>,
    /// The innermost start tag is still open (`<name` emitted, `>` not).
    tag_open: bool,
    /// The innermost element has content (decides `/>` vs `</name>`).
    has_content: Vec<bool>,
}

impl Default for XmlWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl XmlWriter {
    /// A writer with an empty buffer.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A writer whose buffer pre-allocates `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        XmlWriter {
            out: String::with_capacity(cap),
            stack: Vec::new(),
            tag_open: false,
            has_content: Vec::new(),
        }
    }

    fn close_tag_for_content(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
        if let Some(hc) = self.has_content.last_mut() {
            *hc = true;
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Finishes and returns the XML text.
    pub fn finish(self) -> String {
        self.out
    }
}

impl EventSink for XmlWriter {
    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        match ev {
            XmlEvent::StartElement { name } => {
                self.close_tag_for_content();
                self.out.push('<');
                self.out.push_str(name);
                self.stack.push(name.clone().into_owned());
                self.tag_open = true;
                self.has_content.push(false);
            }
            XmlEvent::Attribute { name, value } => {
                if !self.tag_open {
                    return Err(XmlError::InvalidTreeOp(
                        "attribute event after element content".into(),
                    ));
                }
                self.out.push(' ');
                self.out.push_str(name);
                self.out.push_str("=\"");
                escape_into(value, true, &mut self.out);
                self.out.push('"');
            }
            XmlEvent::Text { value } => {
                self.close_tag_for_content();
                escape_into(value, false, &mut self.out);
            }
            XmlEvent::EndElement { .. } => {
                let name = self.stack.pop().ok_or_else(|| {
                    XmlError::InvalidTreeOp("unbalanced EndElement in writer".into())
                })?;
                let had_content = self.has_content.pop().unwrap_or(false);
                if self.tag_open && !had_content {
                    self.out.push_str("/>");
                    self.tag_open = false;
                } else {
                    self.close_tag_for_content();
                    self.out.push_str("</");
                    self.out.push_str(&name);
                    self.out.push('>');
                }
            }
        }
        Ok(())
    }
}

/// Escapes XML-special characters. `in_attr` additionally escapes quotes.
fn escape_into(s: &str, in_attr: bool, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if in_attr => out.push_str("&quot;"),
            '\'' if in_attr => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
}

// ---------------------------------------------------------------------
// Chunked streaming: ChunkedWriter / ChunkAssembler
// ---------------------------------------------------------------------

/// Serializes an event stream into **bounded chunks** of XML text,
/// handing each chunk to a callback as soon as it exceeds the target
/// size. Memory held at any moment is O(chunk size + element depth) — a
/// document of any length streams through without ever materializing as
/// one string.
///
/// Chunks split only at *event boundaries* (never inside a tag, an
/// attribute, or an escaped character), so each chunk re-tokenizes
/// independently with [`XmlTokenizer::resume`]; [`ChunkAssembler`] is the
/// receiving half. WAL document images and replica-copy shipments both
/// travel this path.
pub struct ChunkedWriter<F: FnMut(&str) -> XmlResult<()>> {
    inner: XmlWriter,
    /// A chunk is handed off once the buffer reaches this many bytes
    /// (and the writer is at a splittable point).
    chunk_size: usize,
    emit: F,
}

impl<F: FnMut(&str) -> XmlResult<()>> ChunkedWriter<F> {
    /// A writer that emits chunks of at least `chunk_size` bytes (the
    /// last chunk may be smaller) through `emit`.
    pub fn new(chunk_size: usize, emit: F) -> Self {
        ChunkedWriter {
            inner: XmlWriter::with_capacity(chunk_size.clamp(1, 1 << 20)),
            chunk_size: chunk_size.max(1),
            emit,
        }
    }

    /// Flushes the final partial chunk; errors if the event stream left
    /// elements open.
    pub fn finish(mut self) -> XmlResult<()> {
        if !self.inner.stack.is_empty() || self.inner.tag_open {
            return Err(XmlError::InvalidTreeOp(
                "chunked stream ended with open elements".into(),
            ));
        }
        if !self.inner.out.is_empty() {
            (self.emit)(&self.inner.out)?;
        }
        Ok(())
    }
}

impl<F: FnMut(&str) -> XmlResult<()>> EventSink for ChunkedWriter<F> {
    fn event(&mut self, ev: &XmlEvent<'_>) -> XmlResult<()> {
        self.inner.event(ev)?;
        // Split only when no start tag is dangling: `tag_open` means a
        // later event may still turn `<x ...` into `<x/>` or append
        // attributes, so the bytes are not yet final.
        if self.inner.out.len() >= self.chunk_size && !self.inner.tag_open {
            (self.emit)(&self.inner.out)?;
            self.inner.out.clear();
        }
        Ok(())
    }
}

/// Rebuilds a [`Document`] from the chunks a [`ChunkedWriter`] produced,
/// re-tokenizing each chunk in O(chunk size + depth) memory. The
/// assembler owns the cross-chunk open-element stack, so end tags that
/// close an element opened in an earlier chunk are validated here (the
/// per-chunk tokenizer cannot see those names).
pub struct ChunkAssembler {
    builder: TreeBuilder,
    /// Elements currently open across chunk boundaries.
    open: Vec<String>,
    /// Set once the root element has closed.
    complete: bool,
    started: bool,
}

impl Default for ChunkAssembler {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkAssembler {
    /// An assembler awaiting the first chunk.
    pub fn new() -> Self {
        ChunkAssembler {
            builder: TreeBuilder::new(),
            open: Vec::new(),
            complete: false,
            started: false,
        }
    }

    /// Feeds the next chunk in order.
    pub fn chunk(&mut self, xml: &str) -> XmlResult<()> {
        if self.complete {
            return Err(XmlError::InvalidTreeOp(
                "chunk after the document completed".into(),
            ));
        }
        let mut tok = XmlTokenizer::resume(xml, self.open.len());
        while let Some(ev) = tok.next()? {
            match &ev {
                XmlEvent::StartElement { name } => {
                    self.open.push(name.clone().into_owned());
                    self.started = true;
                }
                XmlEvent::EndElement { name } => {
                    let expected = self.open.pop().ok_or_else(|| {
                        XmlError::InvalidTreeOp(format!("unbalanced end tag </{name}>"))
                    })?;
                    if *name != expected {
                        return Err(XmlError::InvalidTreeOp(format!(
                            "mismatched cross-chunk end tag: expected </{expected}>, \
                             found </{name}>"
                        )));
                    }
                    if self.open.is_empty() {
                        self.complete = true;
                    }
                }
                _ => {}
            }
            self.builder.event(&ev)?;
        }
        Ok(())
    }

    /// Elements still open (0 once the root closed).
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// True when the root element has closed (no more chunks expected).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Finishes the build; errors if chunks stopped mid-document.
    pub fn finish(self) -> XmlResult<Document> {
        if !self.complete || !self.started {
            return Err(XmlError::InvalidTreeOp(
                "chunk stream ended before the document completed".into(),
            ));
        }
        self.builder.finish()
    }
}

/// Streams the events of an existing document subtree into `sink`
/// (pre-order; the inverse of [`TreeBuilder`]). Used to ship documents as
/// event streams without serializing to text first.
pub fn document_events(doc: &Document, root: NodeId, sink: &mut impl EventSink) -> XmlResult<()> {
    use crate::node::NodeKind;
    enum Walk {
        Enter(NodeId),
        Leave(NodeId),
    }
    let mut stack = vec![Walk::Enter(root)];
    while let Some(step) = stack.pop() {
        match step {
            Walk::Enter(id) => {
                let node = doc.node(id)?;
                match &node.kind {
                    NodeKind::Element { label } => {
                        let name = doc.interner().resolve(*label);
                        sink.event(&XmlEvent::start(name))?;
                        stack.push(Walk::Leave(id));
                        // Attribute events must precede content events
                        // (the serializer partitions the same way), so
                        // push content first, attributes last (LIFO).
                        for &c in node.children.iter().rev() {
                            if !doc.node(c)?.is_attribute() {
                                stack.push(Walk::Enter(c));
                            }
                        }
                        for &c in node.children.iter().rev() {
                            if doc.node(c)?.is_attribute() {
                                stack.push(Walk::Enter(c));
                            }
                        }
                    }
                    NodeKind::Attribute { label, value } => {
                        let name = doc.interner().resolve(*label);
                        sink.event(&XmlEvent::attr(name, value.as_str()))?;
                    }
                    NodeKind::Text { value } => {
                        sink.event(&XmlEvent::text(value.as_str()))?;
                    }
                }
            }
            Walk::Leave(id) => {
                let name = doc.label_str(id)?;
                sink.event(&XmlEvent::end(name.to_owned()))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events_of(xml: &str) -> Vec<XmlEvent<'_>> {
        let mut tok = XmlTokenizer::new(xml);
        let mut out = Vec::new();
        while let Some(ev) = tok.next().unwrap() {
            out.push(ev);
        }
        out
    }

    #[test]
    fn tokenizes_minimal_document() {
        assert_eq!(
            events_of("<r/>"),
            vec![XmlEvent::start("r"), XmlEvent::end("r")]
        );
    }

    #[test]
    fn tokenizes_attributes_and_text() {
        let evs = events_of(r#"<item id="13">Mouse</item>"#);
        assert_eq!(
            evs,
            vec![
                XmlEvent::start("item"),
                XmlEvent::attr("id", "13"),
                XmlEvent::text("Mouse"),
                XmlEvent::end("item"),
            ]
        );
    }

    #[test]
    fn borrowed_where_possible() {
        let xml = r#"<a b="plain">text</a>"#;
        for ev in events_of(xml) {
            match ev {
                XmlEvent::Attribute { value, .. } => {
                    assert!(matches!(value, Cow::Borrowed(_)))
                }
                XmlEvent::Text { value } => assert!(matches!(value, Cow::Borrowed(_))),
                _ => {}
            }
        }
    }

    #[test]
    fn entities_decode_as_separate_events() {
        let evs = events_of("<t>a&amp;b</t>");
        assert_eq!(
            evs,
            vec![
                XmlEvent::start("t"),
                XmlEvent::text("a"),
                XmlEvent::text("&"),
                XmlEvent::text("b"),
                XmlEvent::end("t"),
            ]
        );
    }

    #[test]
    fn attribute_entities_fold_into_one_event() {
        let evs = events_of(r#"<t a="x&quot;y&apos;z"/>"#);
        assert_eq!(evs[1], XmlEvent::attr("a", "x\"y'z"));
    }

    #[test]
    fn cdata_is_a_text_event() {
        let evs = events_of("<t><![CDATA[<not><parsed>&amp;]]></t>");
        assert_eq!(evs[1], XmlEvent::text("<not><parsed>&amp;"));
    }

    #[test]
    fn comments_with_dash_adjacent_text() {
        // `--`-adjacent comment content terminates at the first `-->`.
        assert_eq!(
            events_of("<t><!--a--b-->x</t>"),
            vec![
                XmlEvent::start("t"),
                XmlEvent::text("x"),
                XmlEvent::end("t")
            ]
        );
        // Trailing extra dashes are comment content up to the first
        // `-->`; what follows the close is document text.
        let evs = events_of("<t><!--a---->y</t>");
        assert_eq!(evs[1], XmlEvent::text("y"));
        // A dash run that never closes is an unterminated comment.
        assert!(validate("<t><!--a--- </t>").is_err());
    }

    #[test]
    fn numeric_char_refs_decode() {
        let evs = events_of("<t>&#65;&#x42;&#xA;</t>");
        assert_eq!(evs[1], XmlEvent::text("A"));
        assert_eq!(evs[2], XmlEvent::text("B"));
        assert_eq!(evs[3], XmlEvent::text("\n"));
    }

    #[test]
    fn invalid_char_refs_are_errors() {
        for bad in [
            "<t>&#0;</t>",       // NUL is not an XML Char
            "<t>&#x1F;</t>",     // C0 control
            "<t>&#xFFFF;</t>",   // non-character
            "<t>&#xD800;</t>",   // surrogate
            "<t>&#x110000;</t>", // beyond Unicode
            "<t>&#xZZ;</t>",     // malformed
        ] {
            assert!(validate(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn self_closing_emits_balanced_end() {
        assert_eq!(
            events_of("<r><a/><b x='1'/></r>"),
            vec![
                XmlEvent::start("r"),
                XmlEvent::start("a"),
                XmlEvent::end("a"),
                XmlEvent::start("b"),
                XmlEvent::attr("x", "1"),
                XmlEvent::end("b"),
                XmlEvent::end("r"),
            ]
        );
    }

    #[test]
    fn mismatched_end_tag_is_error() {
        let err = validate("<a><b></a></b>").unwrap_err();
        assert!(err.to_string().contains("mismatched end tag"));
    }

    #[test]
    fn validate_is_o_depth() {
        // A long flat document validates without building anything; the
        // only state is the (depth-1) stack.
        let mut xml = String::from("<r>");
        for i in 0..10_000 {
            xml.push_str(&format!("<x i=\"{i}\">v</x>"));
        }
        xml.push_str("</r>");
        validate(&xml).unwrap();
    }

    #[test]
    fn writer_round_trips_through_tokenizer() {
        let src = r#"<site a="1"><p>x &amp; y</p><empty/></site>"#;
        let mut w = XmlWriter::new();
        pump(&mut XmlTokenizer::new(src), &mut w).unwrap();
        let written = w.finish();
        // Round-trip: same document once text runs are merged.
        let d1 = crate::parser::parse(src).unwrap();
        let d2 = crate::parser::parse(&written).unwrap();
        assert_eq!(d1.to_xml(), d2.to_xml());
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut a = XmlWriter::new();
        let mut b = TreeBuilder::new();
        {
            let mut tee = Tee::new(&mut a, &mut b);
            let mut tok = XmlTokenizer::new("<r><x>1</x></r>");
            pump(&mut tok, &mut tee).unwrap();
        }
        assert_eq!(a.finish(), "<r><x>1</x></r>");
        assert_eq!(b.finish().unwrap().node_count(), 3);
    }

    #[test]
    fn document_events_round_trip() {
        let src = r#"<r a="v"><x>1</x><y/>tail</r>"#;
        let doc = crate::parser::parse(src).unwrap();
        let mut tb = TreeBuilder::new();
        document_events(&doc, doc.root(), &mut tb).unwrap();
        let rebuilt = tb.finish().unwrap();
        assert_eq!(rebuilt.to_xml(), doc.to_xml());
    }

    #[test]
    fn chunked_round_trip_preserves_document() {
        // A deep-ish document streamed through tiny chunks must rebuild
        // byte-identically, and every chunk must stay near the target
        // size (bounded memory).
        let mut xml = String::from("<site>");
        for i in 0..50 {
            xml.push_str(&format!(
                "<item id=\"{i}\"><name>n{i}</name><desc>d &amp; {i}</desc></item>"
            ));
        }
        xml.push_str("</site>");
        let doc = crate::parser::parse(&xml).unwrap();
        let mut chunks: Vec<String> = Vec::new();
        {
            let mut w = ChunkedWriter::new(64, |c: &str| {
                chunks.push(c.to_owned());
                Ok(())
            });
            document_events(&doc, doc.root(), &mut w).unwrap();
            w.finish().unwrap();
        }
        assert!(chunks.len() > 10, "small chunks: {}", chunks.len());
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len() >= 64 && c.len() < 64 + 128, "chunk len {}", c.len());
        }
        let mut asm = ChunkAssembler::new();
        for c in &chunks {
            asm.chunk(c).unwrap();
        }
        assert!(asm.is_complete());
        let rebuilt = asm.finish().unwrap();
        assert_eq!(rebuilt.to_xml(), doc.to_xml());
    }

    #[test]
    fn chunk_boundaries_fall_between_events() {
        // Attributes never straddle a boundary: a chunk ending right
        // after a StartElement would leave `<x` dangling, which the
        // writer refuses to split on.
        let src = r#"<r><a k="vvvvvvvvvvvvvvvvvvvvvvvv" j="w">t</a><b/></r>"#;
        let mut chunks: Vec<String> = Vec::new();
        let mut w = ChunkedWriter::new(4, |c: &str| {
            chunks.push(c.to_owned());
            Ok(())
        });
        pump(&mut XmlTokenizer::new(src), &mut w).unwrap();
        w.finish().unwrap();
        for c in &chunks {
            // Every chunk re-tokenizes on its own (resume mode).
            let mut tok = XmlTokenizer::resume(c, 8);
            while tok.next().unwrap().is_some() {}
        }
        let mut asm = ChunkAssembler::new();
        for c in &chunks {
            asm.chunk(c).unwrap();
        }
        assert_eq!(
            asm.finish().unwrap().to_xml(),
            crate::parser::parse(src).unwrap().to_xml()
        );
    }

    #[test]
    fn assembler_rejects_cross_chunk_mismatch_and_truncation() {
        let mut asm = ChunkAssembler::new();
        asm.chunk("<a><b>").unwrap();
        assert_eq!(asm.depth(), 2);
        // Wrong cross-chunk close: tokenizer can't know, assembler must.
        assert!(asm.chunk("</c>").is_err());

        let mut trunc = ChunkAssembler::new();
        trunc.chunk("<a><b>x</b>").unwrap();
        assert!(!trunc.is_complete());
        assert!(trunc.finish().is_err(), "root never closed");
    }

    #[test]
    fn resume_mode_rejects_overclosing() {
        let mut tok = XmlTokenizer::resume("</x></y>", 1);
        assert_eq!(tok.next().unwrap(), Some(XmlEvent::end("x")));
        assert!(tok.next().is_err(), "closed more than was ever open");
    }

    #[test]
    fn tokenizer_depth_and_offset_track_progress() {
        let mut tok = XmlTokenizer::new("<a><b/></a>");
        assert_eq!(tok.depth(), 0);
        tok.next().unwrap(); // <a>
        assert_eq!(tok.depth(), 1);
        assert!(tok.offset() > 0);
    }
}
