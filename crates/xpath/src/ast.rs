//! Abstract syntax of the DTX query language (XPath subset).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A location path: a sequence of steps, evaluated left to right from the
/// document root. All queries in the DTX subset are absolute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// The steps of the path, outermost first.
    pub steps: Vec<Step>,
}

impl Query {
    /// Parses the textual form; see [`crate::parse`].
    pub fn parse(input: &str) -> Result<Self, crate::parse::ParseError> {
        crate::parse::parse_query(input)
    }

    /// A query made of child-axis name steps only (helper for generated
    /// workloads): `Query::path(&["site", "people", "person"])` is
    /// `/site/people/person`.
    pub fn path(names: &[&str]) -> Self {
        Query {
            steps: names
                .iter()
                .map(|n| Step {
                    axis: Axis::Child,
                    test: NodeTest::Name((*n).to_owned()),
                    predicate: None,
                })
                .collect(),
        }
    }

    /// The label names mentioned on the main spine of the query (excluding
    /// predicate paths), used for coarse conflict estimation in baselines.
    pub fn spine_names(&self) -> Vec<&str> {
        self.steps
            .iter()
            .filter_map(|s| match &s.test {
                NodeTest::Name(n) => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// True when any step uses the descendant axis — such queries fan out
    /// over the DataGuide.
    pub fn has_descendant_axis(&self) -> bool {
        self.steps.iter().any(|s| s.axis == Axis::Descendant)
    }

    /// All predicates appearing in the query, with the index of the step
    /// carrying them. The XDGL rules lock predicate target paths with ST.
    pub fn predicates(&self) -> impl Iterator<Item = (usize, &Predicate)> {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.predicate.as_ref().map(|p| (i, p)))
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

/// One step of a location path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// The axis relating this step to the previous one.
    pub axis: Axis,
    /// Node test applied along the axis.
    pub test: NodeTest,
    /// Optional predicate filtering the step's result set.
    pub predicate: Option<Predicate>,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.axis {
            Axis::Child => write!(f, "/")?,
            Axis::Descendant => write!(f, "//")?,
            Axis::Attribute => write!(f, "/@")?,
        }
        write!(f, "{}", self.test)?;
        if let Some(p) = &self.predicate {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// Axes in the DTX subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// `child::` — written `/name`.
    Child,
    /// `descendant-or-self::node()/child::` — written `//name`.
    Descendant,
    /// `attribute::` — written `/@name`.
    Attribute,
}

/// Node tests in the DTX subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeTest {
    /// Match elements (or attributes, on the attribute axis) with this name.
    Name(String),
    /// Match any element (`*`).
    Wildcard,
    /// Match text nodes (`text()`).
    Text,
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Wildcard => write!(f, "*"),
            NodeTest::Text => write!(f, "text()"),
        }
    }
}

/// Predicates: boolean combinations of path/literal comparisons and path
/// existence tests. Paths inside predicates are *relative* to the step's
/// context node and use the same restricted step grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// `path op literal`, e.g. `id=4`, `name="Patricia"`, `price>10`.
    Cmp {
        /// Relative path whose string-value is compared.
        path: Query,
        /// Comparison operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// Bare relative path: true when non-empty, e.g. `[phone]`.
    Exists(Query),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation, written `not(...)`.
    Not(Box<Predicate>),
}

impl Predicate {
    /// All relative paths referenced by the predicate (targets of ST locks
    /// in the XDGL rules).
    pub fn paths(&self) -> Vec<&Query> {
        let mut out = Vec::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths<'a>(&'a self, out: &mut Vec<&'a Query>) {
        match self {
            Predicate::Cmp { path, .. } => out.push(path),
            Predicate::Exists(path) => out.push(path),
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_paths(out);
                b.collect_paths(out);
            }
            Predicate::Not(p) => p.collect_paths(out),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { path, op, value } => {
                // Relative paths print without their leading '/'.
                let p = path.to_string();
                write!(f, "{}{op}{value}", p.strip_prefix('/').unwrap_or(&p))
            }
            Predicate::Exists(path) => {
                let p = path.to_string();
                write!(f, "{}", p.strip_prefix('/').unwrap_or(&p))
            }
            Predicate::And(a, b) => write!(f, "{a} and {b}"),
            Predicate::Or(a, b) => write!(f, "{a} or {b}"),
            Predicate::Not(p) => write!(f, "not({p})"),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Literals in predicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Numeric literal; comparisons coerce the node's string-value to f64.
    Number(f64),
    /// String literal; compared textually.
    Str(String),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Literal::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_simple_paths() {
        for src in [
            "/products/product",
            "//person",
            "/site/people/person/@id",
            "/products/product[id=4]",
            "/site//item[name=\"Mouse\"]/price",
            "/a/*[b>10 and not(c)]",
        ] {
            let q = Query::parse(src).unwrap();
            assert_eq!(q.to_string(), src, "display mismatch for {src}");
        }
    }

    #[test]
    fn path_helper_builds_child_steps() {
        let q = Query::path(&["site", "people"]);
        assert_eq!(q.to_string(), "/site/people");
        assert!(!q.has_descendant_axis());
        assert_eq!(q.spine_names(), vec!["site", "people"]);
    }

    #[test]
    fn predicate_paths_collects_all() {
        let q = Query::parse("/a[b=1 and (c=2 or not(d))]/e").unwrap();
        let (idx, pred) = q.predicates().next().unwrap();
        assert_eq!(idx, 0);
        let paths: Vec<String> = pred.paths().iter().map(|p| p.to_string()).collect();
        assert_eq!(paths, vec!["/b", "/c", "/d"]);
    }

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Number(4.0).to_string(), "4");
        assert_eq!(Literal::Number(10.3).to_string(), "10.3");
        assert_eq!(Literal::Str("x".into()).to_string(), "\"x\"");
    }
}
