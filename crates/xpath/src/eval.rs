//! Query evaluation against an in-memory [`Document`].
//!
//! Evaluation is set-at-a-time: each step maps the current context set to
//! the next, de-duplicating while preserving document order (important for
//! `//` steps whose expansions overlap). Predicates are evaluated per
//! context node by recursively evaluating their relative paths.

use crate::ast::{Axis, CmpOp, Literal, NodeTest, Predicate, Query, Step};
use dtx_xml::{Document, NodeId};
use std::collections::HashSet;

/// Evaluates an absolute query against `doc`, returning matching nodes in
/// document order.
///
/// Per XPath semantics the first step is matched against the *root
/// element*: `/products/...` requires the root to be labelled `products`.
pub fn eval(doc: &Document, query: &Query) -> Vec<NodeId> {
    let mut current: Vec<NodeId> = vec![];
    for (i, step) in query.steps.iter().enumerate() {
        current = if i == 0 {
            step_from_virtual_root(doc, step)
        } else {
            apply_step(doc, &current, step)
        };
        if current.is_empty() {
            break;
        }
    }
    current
}

/// The first step is matched against the virtual document root, whose only
/// child is the root element.
fn step_from_virtual_root(doc: &Document, step: &Step) -> Vec<NodeId> {
    let root = doc.root();
    let mut out = Vec::new();
    match step.axis {
        Axis::Child => {
            if test_matches(doc, root, &step.test) {
                out.push(root);
            }
        }
        Axis::Descendant => {
            for n in doc.descendants(root) {
                if is_element_or_text(doc, n) && test_matches(doc, n, &step.test) {
                    out.push(n);
                }
            }
        }
        Axis::Attribute => {
            // `/@x` on the virtual root matches nothing (roots are elements).
        }
    }
    filter_by_predicate(doc, out, step.predicate.as_ref())
}

/// Evaluates a (relative) query starting from the given context nodes.
pub fn eval_from(doc: &Document, context: &[NodeId], query: &Query) -> Vec<NodeId> {
    let mut current = context.to_vec();
    for step in &query.steps {
        current = apply_step(doc, &current, step);
        if current.is_empty() {
            break;
        }
    }
    current
}

fn apply_step(doc: &Document, context: &[NodeId], step: &Step) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for &ctx in context {
        match step.axis {
            Axis::Child => {
                if let Ok(children) = doc.children(ctx) {
                    for &c in children {
                        if is_element_or_text(doc, c) && test_matches(doc, c, &step.test) {
                            push_unique(&mut out, &mut seen, c);
                        }
                    }
                }
            }
            Axis::Descendant => {
                // descendant-or-self on children: all strict descendants.
                for n in doc.descendants(ctx).skip(1) {
                    if is_element_or_text(doc, n) && test_matches(doc, n, &step.test) {
                        push_unique(&mut out, &mut seen, n);
                    }
                }
            }
            Axis::Attribute => {
                if let Ok(children) = doc.children(ctx) {
                    for &c in children {
                        let is_attr = doc.node(c).map(|n| n.is_attribute()).unwrap_or(false);
                        if is_attr && test_matches(doc, c, &step.test) {
                            push_unique(&mut out, &mut seen, c);
                        }
                    }
                }
            }
        }
    }
    filter_by_predicate(doc, out, step.predicate.as_ref())
}

fn push_unique(out: &mut Vec<NodeId>, seen: &mut HashSet<NodeId>, n: NodeId) {
    if seen.insert(n) {
        out.push(n);
    }
}

fn is_element_or_text(doc: &Document, n: NodeId) -> bool {
    doc.node(n)
        .map(|node| !node.is_attribute())
        .unwrap_or(false)
}

fn test_matches(doc: &Document, n: NodeId, test: &NodeTest) -> bool {
    let Ok(node) = doc.node(n) else { return false };
    match test {
        NodeTest::Wildcard => node.is_element(),
        NodeTest::Text => node.is_text(),
        NodeTest::Name(name) => match node.kind.label() {
            Some(sym) => doc.interner().resolve(sym) == name,
            None => false,
        },
    }
}

fn filter_by_predicate(
    doc: &Document,
    nodes: Vec<NodeId>,
    pred: Option<&Predicate>,
) -> Vec<NodeId> {
    match pred {
        None => nodes,
        Some(p) => nodes
            .into_iter()
            .filter(|&n| matches_predicate(doc, n, p))
            .collect(),
    }
}

/// Evaluates a predicate with `n` as the context node.
pub fn matches_predicate(doc: &Document, n: NodeId, pred: &Predicate) -> bool {
    match pred {
        Predicate::Exists(path) => !eval_from(doc, &[n], path).is_empty(),
        Predicate::Cmp { path, op, value } => {
            let targets = eval_from(doc, &[n], path);
            // XPath existential semantics: true if ANY target compares true.
            targets.iter().any(|&t| compare_node(doc, t, *op, value))
        }
        Predicate::And(a, b) => matches_predicate(doc, n, a) && matches_predicate(doc, n, b),
        Predicate::Or(a, b) => matches_predicate(doc, n, a) || matches_predicate(doc, n, b),
        Predicate::Not(p) => !matches_predicate(doc, n, p),
    }
}

fn compare_node(doc: &Document, n: NodeId, op: CmpOp, value: &Literal) -> bool {
    let actual = string_value(doc, n);
    match value {
        Literal::Str(expected) => {
            let ord = actual.as_str().cmp(expected.as_str());
            ord_matches(op, ord)
        }
        Literal::Number(expected) => match actual.trim().parse::<f64>() {
            Ok(v) => match v.partial_cmp(expected) {
                Some(ord) => ord_matches(op, ord),
                None => false,
            },
            // Non-numeric string-values never compare true to numbers.
            Err(_) => false,
        },
    }
}

fn ord_matches(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ord),
        (CmpOp::Eq, Equal)
            | (CmpOp::Ne, Less)
            | (CmpOp::Ne, Greater)
            | (CmpOp::Lt, Less)
            | (CmpOp::Le, Less)
            | (CmpOp::Le, Equal)
            | (CmpOp::Gt, Greater)
            | (CmpOp::Ge, Greater)
            | (CmpOp::Ge, Equal)
    )
}

/// XPath string-value of a node: concatenated descendant text for
/// elements, the value itself for attributes/text.
pub fn string_value(doc: &Document, n: NodeId) -> String {
    match doc.node(n) {
        Ok(node) if node.is_element() => doc.text_of(n).unwrap_or_default(),
        Ok(node) => node.kind.value().unwrap_or("").to_owned(),
        Err(_) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::parse;

    fn doc() -> Document {
        parse(
            r#"<site>
                 <people>
                   <person id="p0"><name>Ana</name><age>31</age></person>
                   <person id="p1"><name>Bruno</name><age>45</age><phone>555</phone></person>
                 </people>
                 <products>
                   <product><id>4</id><name>Monitor</name><price>120.00</price></product>
                   <product><id>14</id><name>Printer</name><price>55.50</price></product>
                 </products>
               </site>"#,
        )
        .unwrap()
    }

    fn names(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| doc.label_str(n).unwrap_or("").to_owned())
            .collect()
    }

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn root_test_must_match() {
        let d = doc();
        assert_eq!(eval(&d, &q("/site")).len(), 1);
        assert!(eval(&d, &q("/wrong")).is_empty());
    }

    #[test]
    fn child_paths() {
        let d = doc();
        let r = eval(&d, &q("/site/people/person"));
        assert_eq!(r.len(), 2);
        assert_eq!(names(&d, &r), vec!["person", "person"]);
    }

    #[test]
    fn descendant_axis_finds_all_depths() {
        let d = doc();
        assert_eq!(eval(&d, &q("//name")).len(), 4);
        assert_eq!(eval(&d, &q("//person")).len(), 2);
        assert_eq!(eval(&d, &q("/site//price")).len(), 2);
    }

    #[test]
    fn descendant_results_deduplicated_in_doc_order() {
        let d = parse("<r><a><a><b/></a></a></r>").unwrap();
        // //a//b: both a's reach the same b; result must contain b once.
        let r = eval(&d, &q("//a//b"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn wildcard_and_text_tests() {
        let d = doc();
        let r = eval(&d, &q("/site/*"));
        assert_eq!(names(&d, &r), vec!["people", "products"]);
        let r = eval(&d, &q("/site/people/person/name/text()"));
        assert_eq!(r.len(), 2);
        assert_eq!(string_value(&d, r[0]), "Ana");
    }

    #[test]
    fn attribute_axis() {
        let d = doc();
        let r = eval(&d, &q("/site/people/person/@id"));
        assert_eq!(r.len(), 2);
        assert_eq!(string_value(&d, r[0]), "p0");
        // Attributes are not matched by child steps.
        assert!(eval(&d, &q("/site/people/person/id")).is_empty());
    }

    #[test]
    fn numeric_equality_predicate() {
        let d = doc();
        let r = eval(&d, &q("/site/products/product[id=4]"));
        assert_eq!(r.len(), 1);
        let name = eval_from(&d, &r, &Query::path(&["name"]));
        assert_eq!(string_value(&d, name[0]), "Monitor");
    }

    #[test]
    fn numeric_ordering_predicates() {
        let d = doc();
        assert_eq!(eval(&d, &q("/site/products/product[price>100]")).len(), 1);
        assert_eq!(eval(&d, &q("/site/products/product[price<=120]")).len(), 2);
        assert_eq!(eval(&d, &q("/site/people/person[age!=31]")).len(), 1);
    }

    #[test]
    fn string_predicates() {
        let d = doc();
        assert_eq!(eval(&d, &q("/site/people/person[name=\"Ana\"]")).len(), 1);
        assert_eq!(eval(&d, &q("/site/people/person[@id=\"p1\"]")).len(), 1);
        assert!(eval(&d, &q("/site/people/person[name=\"Zeno\"]")).is_empty());
    }

    #[test]
    fn exists_predicate() {
        let d = doc();
        let r = eval(&d, &q("/site/people/person[phone]"));
        assert_eq!(r.len(), 1);
        let id_sym = d.interner().get("id").unwrap();
        assert_eq!(d.attribute(r[0], id_sym).unwrap(), Some("p1"));
    }

    #[test]
    fn boolean_predicates() {
        let d = doc();
        assert_eq!(
            eval(&d, &q("/site/people/person[age>30 and phone]")).len(),
            1
        );
        assert_eq!(
            eval(&d, &q("/site/people/person[age>30 or phone]")).len(),
            2
        );
        assert_eq!(eval(&d, &q("/site/people/person[not(phone)]")).len(), 1);
    }

    #[test]
    fn predicate_on_missing_path_is_false() {
        let d = doc();
        assert!(eval(&d, &q("/site/people/person[salary=10]")).is_empty());
    }

    #[test]
    fn non_numeric_text_never_equals_number() {
        let d = doc();
        assert!(eval(&d, &q("/site/people/person[name=31]")).is_empty());
    }

    #[test]
    fn deep_relative_predicate_path() {
        let d = parse(
            "<site><open_auctions><open_auction><bidder><increase>12</increase></bidder></open_auction>\
             <open_auction><bidder><increase>3</increase></bidder></open_auction></open_auctions></site>",
        )
        .unwrap();
        let r = eval(
            &d,
            &q("/site/open_auctions/open_auction[bidder/increase>10]"),
        );
        assert_eq!(r.len(), 1);
    }
}
