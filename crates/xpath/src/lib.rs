//! # dtx-xpath — the query and update language of DTX
//!
//! The XDGL protocol (and hence DTX) deliberately restricts itself to "a
//! subset of the XPath language" for queries plus a five-operation update
//! language (*insert*, *remove*, *transpose*, *rename*, *change*) — paper
//! §2. This crate implements both:
//!
//! * [`Query`] — absolute location paths built from the child (`/`),
//!   descendant-or-self (`//`) and attribute (`@`) axes, name tests,
//!   wildcards, `text()` tests, and positional-free predicates comparing a
//!   relative path against a literal (`[id=4]`, `[name="Patricia"]`,
//!   `[price>10]`), combinable with `and` / `or` / `not(...)`;
//! * [`Query::parse`] — a recursive-descent parser for that subset;
//! * [`eval`](mod@eval) — evaluation of a query against a [`dtx_xml::Document`],
//!   returning matching node ids in document order;
//! * [`UpdateOp`] / [`apply_update`] — the update language, with invertible
//!   application: every update returns an [`UndoRecord`] that
//!   [`undo_update`] can replay to roll the document back (the mechanism
//!   DTX's abort path relies on).
//!
//! What is *not* here, by design (and per the paper's own restriction):
//! positional predicates, sibling axes, arbitrary functions, and reverse
//! axes. The lock-placement rules of XDGL depend on every step mapping to
//! DataGuide label paths, which this subset guarantees.

pub mod ast;
pub mod eval;
pub mod parse;
pub mod update;

pub use ast::{Axis, CmpOp, Literal, NodeTest, Predicate, Query, Step};
pub use eval::{eval, eval_from, matches_predicate};
pub use parse::ParseError;
pub use update::{apply_update, undo_update, UndoRecord, UpdateError, UpdateOp};
