//! Recursive-descent parser for the DTX query subset.
//!
//! Grammar (whitespace insignificant except inside string literals):
//!
//! ```text
//! query      := step+
//! step       := ("/" | "//") ("@"? nametest) predicate?
//! nametest   := NAME | "*" | "text()"
//! predicate  := "[" or-expr "]"
//! or-expr    := and-expr ("or" and-expr)*
//! and-expr   := unary ("and" unary)*
//! unary      := "not" "(" or-expr ")" | "(" or-expr ")" | comparison
//! comparison := relpath (cmpop literal)?
//! relpath    := nametest (("/" | "//") "@"? nametest)*   -- also "@name"
//! cmpop      := "=" | "!=" | "<" | "<=" | ">" | ">="
//! literal    := NUMBER | STRING
//! ```

use crate::ast::{Axis, CmpOp, Literal, NodeTest, Predicate, Query, Step};
use std::fmt;

/// Error raised when query text does not conform to the DTX subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description of what was expected.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses an absolute query. See the module-level grammar.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = P {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.peek() != Some(b'/') {
        return Err(p.err("queries must be absolute (start with '/')"));
    }
    let q = p.location_path(true)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters after query"));
    }
    if q.steps.is_empty() {
        return Err(p.err("empty query"));
    }
    Ok(q)
}

struct P<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    /// Consumes a keyword only when it is not a prefix of a longer name.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw.as_bytes()) {
            let next = self.input.get(self.pos + kw.len()).copied();
            let boundary =
                !matches!(next, Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
            if boundary {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("ascii")
            .to_owned())
    }

    /// Parses a location path. `absolute` paths require a leading axis
    /// token; relative paths (inside predicates) start with a name test.
    fn location_path(&mut self, absolute: bool) -> Result<Query, ParseError> {
        let mut steps = Vec::new();
        if !absolute {
            steps.push(self.bare_step()?);
        }
        loop {
            self.skip_ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else {
                break;
            };
            let mut step = self.bare_step()?;
            // `//name` and `/name` differ only in axis; `/@name` was handled
            // inside bare_step by upgrading the axis.
            if step.axis != Axis::Attribute {
                step.axis = axis;
            } else if axis == Axis::Descendant {
                return Err(self.err("'//@name' is outside the DTX subset"));
            }
            steps.push(step);
        }
        Ok(Query { steps })
    }

    /// Parses `@name`, `name`, `*`, or `text()` plus an optional predicate,
    /// with a default child axis.
    fn bare_step(&mut self) -> Result<Step, ParseError> {
        self.skip_ws();
        let axis = if self.eat("@") {
            Axis::Attribute
        } else {
            Axis::Child
        };
        let test = if self.eat("*") {
            NodeTest::Wildcard
        } else {
            let before = self.pos;
            if self.eat_kw("text") && {
                self.skip_ws();
                self.eat("()")
            } {
                NodeTest::Text
            } else {
                // Not `text()`; backtrack and read a plain name (which may
                // itself be "text").
                self.pos = before;
                NodeTest::Name(self.name()?)
            }
        };
        if axis == Axis::Attribute && !matches!(test, NodeTest::Name(_)) {
            return Err(self.err("attribute steps require a name"));
        }
        self.skip_ws();
        let predicate = if self.eat("[") {
            let p = self.or_expr()?;
            self.skip_ws();
            if !self.eat("]") {
                return Err(self.err("expected ']'"));
            }
            Some(p)
        } else {
            None
        };
        Ok(Step {
            axis,
            test,
            predicate,
        })
    }

    fn or_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.and_expr()?;
        loop {
            self.skip_ws();
            if self.eat_kw("or") {
                let right = self.and_expr()?;
                left = Predicate::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn and_expr(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.unary()?;
        loop {
            self.skip_ws();
            if self.eat_kw("and") {
                let right = self.unary()?;
                left = Predicate::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn unary(&mut self) -> Result<Predicate, ParseError> {
        self.skip_ws();
        if self.eat_kw("not") {
            self.skip_ws();
            if !self.eat("(") {
                return Err(self.err("expected '(' after 'not'"));
            }
            let inner = self.or_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat("(") {
            let inner = self.or_expr()?;
            self.skip_ws();
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(inner);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate, ParseError> {
        let path = self.location_path(false)?;
        self.skip_ws();
        let op = if self.eat("!=") {
            Some(CmpOp::Ne)
        } else if self.eat("<=") {
            Some(CmpOp::Le)
        } else if self.eat(">=") {
            Some(CmpOp::Ge)
        } else if self.eat("=") {
            Some(CmpOp::Eq)
        } else if self.eat("<") {
            Some(CmpOp::Lt)
        } else if self.eat(">") {
            Some(CmpOp::Gt)
        } else {
            None
        };
        match op {
            None => Ok(Predicate::Exists(path)),
            Some(op) => {
                let value = self.literal()?;
                Ok(Predicate::Cmp { path, op, value })
            }
        }
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.pos += 1;
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == q {
                        let s = std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string literal"))?
                            .to_owned();
                        self.pos += 1;
                        return Ok(Literal::Str(s));
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(b) if b.is_ascii_digit() || b == b'-' || b == b'.' => {
                let start = self.pos;
                if b == b'-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.') {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.input[start..self.pos]).expect("ascii");
                text.parse::<f64>()
                    .map(Literal::Number)
                    .map_err(|_| self.err(format!("invalid number {text:?}")))
            }
            _ => Err(self.err("expected a literal")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    #[test]
    fn simple_child_path() {
        let query = q("/products/product/id");
        assert_eq!(query.steps.len(), 3);
        assert!(query.steps.iter().all(|s| s.axis == Axis::Child));
    }

    #[test]
    fn descendant_axis() {
        let query = q("//product");
        assert_eq!(query.steps.len(), 1);
        assert_eq!(query.steps[0].axis, Axis::Descendant);
        let query = q("/site//item/name");
        assert_eq!(query.steps[1].axis, Axis::Descendant);
    }

    #[test]
    fn attribute_step() {
        let query = q("/site/people/person/@id");
        assert_eq!(query.steps[3].axis, Axis::Attribute);
        assert_eq!(query.steps[3].test, NodeTest::Name("id".into()));
    }

    #[test]
    fn wildcard_and_text() {
        let query = q("/a/*/text()");
        assert_eq!(query.steps[1].test, NodeTest::Wildcard);
        assert_eq!(query.steps[2].test, NodeTest::Text);
    }

    #[test]
    fn numeric_predicate() {
        let query = q("/products/product[id=4]");
        match query.steps[1].predicate.as_ref().unwrap() {
            Predicate::Cmp { path, op, value } => {
                assert_eq!(path.to_string(), "/id");
                assert_eq!(*op, CmpOp::Eq);
                assert_eq!(*value, Literal::Number(4.0));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn string_predicate_with_attribute_path() {
        let query = q("/site/people/person[@id=\"p12\"]/name");
        match query.steps[2].predicate.as_ref().unwrap() {
            Predicate::Cmp { path, value, .. } => {
                assert_eq!(path.steps[0].axis, Axis::Attribute);
                assert_eq!(*value, Literal::Str("p12".into()));
            }
            other => panic!("unexpected predicate {other:?}"),
        }
    }

    #[test]
    fn boolean_predicates() {
        let query = q("/a[b=1 and c=2]");
        assert!(matches!(
            query.steps[0].predicate,
            Some(Predicate::And(_, _))
        ));
        let query = q("/a[b=1 or c=2 and d=3]"); // and binds tighter
        match query.steps[0].predicate.as_ref().unwrap() {
            Predicate::Or(_, rhs) => assert!(matches!(**rhs, Predicate::And(_, _))),
            other => panic!("unexpected {other:?}"),
        }
        let query = q("/a[not(b) and (c or d)]");
        assert!(matches!(
            query.steps[0].predicate,
            Some(Predicate::And(_, _))
        ));
    }

    #[test]
    fn exists_predicate() {
        let query = q("/people/person[phone]");
        assert!(matches!(
            query.steps[1].predicate,
            Some(Predicate::Exists(_))
        ));
    }

    #[test]
    fn relative_predicate_paths_with_depth() {
        let query = q("/site/open_auctions/open_auction[bidder/increase>10]");
        match query.steps[2].predicate.as_ref().unwrap() {
            Predicate::Cmp { path, op, .. } => {
                assert_eq!(path.steps.len(), 2);
                assert_eq!(*op, CmpOp::Gt);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn all_comparison_operators() {
        for (src, op) in [
            ("/a[b=1]", CmpOp::Eq),
            ("/a[b!=1]", CmpOp::Ne),
            ("/a[b<1]", CmpOp::Lt),
            ("/a[b<=1]", CmpOp::Le),
            ("/a[b>1]", CmpOp::Gt),
            ("/a[b>=1]", CmpOp::Ge),
        ] {
            let query = q(src);
            match query.steps[0].predicate.as_ref().unwrap() {
                Predicate::Cmp { op: parsed, .. } => assert_eq!(*parsed, op, "for {src}"),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let query = q("/a[ b = 1 and  c = \"x y\" ]");
        assert!(query.steps[0].predicate.is_some());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "relative/path",
            "/a[",
            "/a[]",
            "/a[b=]",
            "/a[b~1]",
            "/a]",
            "/a[not b]",
            "//@id",
            "/a/@*",
            "/a[b=1] trailing",
        ] {
            assert!(parse_query(bad).is_err(), "expected error for {bad:?}");
        }
        // 'text' as a plain element name (no parens) is a valid name test.
        let q = parse_query("/text").unwrap();
        assert_eq!(q.steps[0].test, NodeTest::Name("text".into()));
    }

    #[test]
    fn keyword_prefix_names_parse() {
        // Names beginning with 'and'/'or'/'not' must not be eaten as keywords.
        let query = q("/address[orders=1 and android=2]");
        assert!(query.steps[0].predicate.is_some());
        let query = q("/notes/note");
        assert_eq!(query.steps.len(), 2);
    }
}
