//! The five-operation XML update language, with invertible application.
//!
//! Paper §2: "In order to update data in XML documents an update language
//! was defined. This language has five types of update operations: insert,
//! remove, transpose, rename and change." DTX's abort path requires every
//! applied operation to be undoable ("upon abortion, the transaction undoes
//! all its effects on the required data"); [`apply_update`] therefore
//! returns an [`UndoRecord`] which [`undo_update`] replays in reverse.

use crate::ast::Query;
use crate::eval::eval;
use dtx_xml::document::{Fragment, InsertPos, Removed};
use dtx_xml::{Document, NodeId, XmlError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An update operation over one document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Insert `fragment` at `pos` relative to every node matched by
    /// `target`.
    Insert {
        /// Anchor path.
        target: Query,
        /// Subtree to splice in.
        fragment: Fragment,
        /// Position relative to the anchor.
        pos: InsertPos,
    },
    /// Remove every node matched by `target` (with its subtree).
    Remove {
        /// Path of the victims.
        target: Query,
    },
    /// Rename every matched element/attribute to `new_label`.
    Rename {
        /// Path of the nodes to relabel.
        target: Query,
        /// Replacement label.
        new_label: String,
    },
    /// Replace the value of every matched node with `new_value`.
    Change {
        /// Path of the nodes whose value changes.
        target: Query,
        /// Replacement value.
        new_value: String,
    },
    /// Swap the positions of the (single) nodes matched by `a` and `b`.
    Transpose {
        /// First node's path.
        a: Query,
        /// Second node's path.
        b: Query,
    },
}

impl UpdateOp {
    /// The paths this operation navigates — the inputs to lock placement.
    pub fn queries(&self) -> Vec<&Query> {
        match self {
            UpdateOp::Insert { target, .. }
            | UpdateOp::Remove { target }
            | UpdateOp::Rename { target, .. }
            | UpdateOp::Change { target, .. } => vec![target],
            UpdateOp::Transpose { a, b } => vec![a, b],
        }
    }

    /// Short operation name for metrics and traces.
    pub fn op_name(&self) -> &'static str {
        match self {
            UpdateOp::Insert { .. } => "insert",
            UpdateOp::Remove { .. } => "remove",
            UpdateOp::Rename { .. } => "rename",
            UpdateOp::Change { .. } => "change",
            UpdateOp::Transpose { .. } => "transpose",
        }
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateOp::Insert {
                target,
                fragment,
                pos,
            } => {
                let pos = match pos {
                    InsertPos::Into => "into",
                    InsertPos::FirstInto => "first-into",
                    InsertPos::Before => "before",
                    InsertPos::After => "after",
                };
                write!(
                    f,
                    "insert {} {pos} {target}",
                    fragment.label().unwrap_or("#text")
                )
            }
            UpdateOp::Remove { target } => write!(f, "remove {target}"),
            UpdateOp::Rename { target, new_label } => write!(f, "rename {target} to {new_label}"),
            UpdateOp::Change { target, new_value } => {
                write!(f, "change {target} to \"{new_value}\"")
            }
            UpdateOp::Transpose { a, b } => write!(f, "transpose {a} with {b}"),
        }
    }
}

/// Errors from applying an update.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateError {
    /// The target path matched no node.
    EmptyTarget(String),
    /// Transpose requires each path to match exactly one node.
    AmbiguousTranspose { path: String, matches: usize },
    /// An underlying tree operation failed.
    Xml(XmlError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::EmptyTarget(p) => write!(f, "update target matched no node: {p}"),
            UpdateError::AmbiguousTranspose { path, matches } => {
                write!(
                    f,
                    "transpose path {path} matched {matches} nodes (need exactly 1)"
                )
            }
            UpdateError::Xml(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<XmlError> for UpdateError {
    fn from(e: XmlError) -> Self {
        UpdateError::Xml(e)
    }
}

/// Inverse of one applied [`UpdateOp`]; see [`undo_update`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UndoRecord {
    /// Inserted subtree roots to remove again.
    Insert(Vec<NodeId>),
    /// Removal records to splice back (in original removal order).
    Remove(Vec<Removed>),
    /// `(node, old_label)` pairs to restore.
    Rename(Vec<(NodeId, String)>),
    /// `(node, old_value)` pairs to restore. `Some(old)` restores `old`
    /// onto the recorded target; `None` marks a text child the change
    /// *created* under a previously text-less element — the exact inverse
    /// removes that node again (restoring `""` would leave an empty text
    /// residue behind an aborted transaction).
    Change(Vec<(NodeId, Option<String>)>),
    /// The two nodes to swap back.
    Transpose(NodeId, NodeId),
}

/// Applies `op` to `doc`, returning the inverse record.
///
/// Application is all-or-nothing at the level of target resolution: targets
/// are resolved first, and structural errors on any target leave previously
/// modified targets applied (the caller — DTX's lock manager — wraps every
/// operation in its own undo scope, so partial application is rolled back
/// one level up; see `dtx-core`).
pub fn apply_update(doc: &mut Document, op: &UpdateOp) -> Result<UndoRecord, UpdateError> {
    match op {
        UpdateOp::Insert {
            target,
            fragment,
            pos,
        } => {
            let anchors = non_empty(doc, target)?;
            let mut inserted = Vec::with_capacity(anchors.len());
            for anchor in anchors {
                inserted.push(doc.insert_fragment(anchor, fragment, *pos)?);
            }
            Ok(UndoRecord::Insert(inserted))
        }
        UpdateOp::Remove { target } => {
            let victims = non_empty(doc, target)?;
            // Skip nodes whose ancestor is also a victim: removing the
            // ancestor removes them, and double-removal would see stale ids.
            let set: std::collections::HashSet<NodeId> = victims.iter().copied().collect();
            let mut records = Vec::new();
            for v in victims {
                let covered = doc
                    .ancestors(v)
                    .map(|anc| anc.iter().any(|a| set.contains(a)))
                    .unwrap_or(false);
                if !covered {
                    records.push(doc.remove(v)?);
                }
            }
            Ok(UndoRecord::Remove(records))
        }
        UpdateOp::Rename { target, new_label } => {
            let targets = non_empty(doc, target)?;
            let mut olds = Vec::with_capacity(targets.len());
            for t in targets {
                let old = doc.rename(t, new_label)?;
                olds.push((t, doc.interner().resolve(old).to_owned()));
            }
            Ok(UndoRecord::Rename(olds))
        }
        UpdateOp::Change { target, new_value } => {
            let targets = non_empty(doc, target)?;
            let mut olds = Vec::with_capacity(targets.len());
            for t in targets {
                let (old, created) = doc.change_value_tracked(t, new_value)?;
                match created {
                    // The element had no text child; the change created one,
                    // so the inverse is to remove that node again.
                    Some(tid) => olds.push((tid, None)),
                    None => olds.push((t, Some(old))),
                }
            }
            Ok(UndoRecord::Change(olds))
        }
        UpdateOp::Transpose { a, b } => {
            let na = single(doc, a)?;
            let nb = single(doc, b)?;
            doc.transpose(na, nb)?;
            Ok(UndoRecord::Transpose(na, nb))
        }
    }
}

/// Reverses an applied update.
///
/// Undo of a `Remove` re-inserts fragments at their recorded positions; the
/// restored subtrees receive fresh node ids (ids are never reused), which is
/// transparent to DTX because locks are held on DataGuide nodes, not
/// document nodes.
pub fn undo_update(doc: &mut Document, undo: &UndoRecord) -> Result<(), UpdateError> {
    match undo {
        UndoRecord::Insert(ids) => {
            for &id in ids.iter().rev() {
                // The insert may itself have been undone already (abort
                // after partial application); tolerate stale ids.
                if doc.is_live(id) {
                    doc.remove(id)?;
                }
            }
        }
        UndoRecord::Remove(records) => {
            for rec in records.iter().rev() {
                doc.unremove(rec)?;
            }
        }
        UndoRecord::Rename(olds) => {
            for (id, old) in olds.iter().rev() {
                doc.rename(*id, old)?;
            }
        }
        UndoRecord::Change(olds) => {
            for (id, old) in olds.iter().rev() {
                // The node may already be gone (abort after partial
                // application); tolerate stale ids.
                if !doc.is_live(*id) {
                    continue;
                }
                match old {
                    Some(old) => {
                        doc.change_value(*id, old)?;
                    }
                    // The change created this text child; remove it again.
                    None => {
                        doc.remove(*id)?;
                    }
                }
            }
        }
        UndoRecord::Transpose(a, b) => {
            doc.transpose(*a, *b)?;
        }
    }
    Ok(())
}

fn non_empty(doc: &Document, q: &Query) -> Result<Vec<NodeId>, UpdateError> {
    let nodes = eval(doc, q);
    if nodes.is_empty() {
        Err(UpdateError::EmptyTarget(q.to_string()))
    } else {
        Ok(nodes)
    }
}

fn single(doc: &Document, q: &Query) -> Result<NodeId, UpdateError> {
    let nodes = eval(doc, q);
    match nodes.len() {
        1 => Ok(nodes[0]),
        n => Err(UpdateError::AmbiguousTranspose {
            path: q.to_string(),
            matches: n,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtx_xml::parse;

    fn products() -> Document {
        parse(
            "<products>\
               <product><id>4</id><name>Monitor</name><price>120.00</price></product>\
               <product><id>14</id><name>Printer</name><price>55.50</price></product>\
             </products>",
        )
        .unwrap()
    }

    fn q(s: &str) -> Query {
        Query::parse(s).unwrap()
    }

    #[test]
    fn insert_the_paper_mouse() {
        // t1op2: insert product Mouse, price 10.30, id 13.
        let mut doc = products();
        let op = UpdateOp::Insert {
            target: q("/products"),
            fragment: Fragment::elem(
                "product",
                vec![
                    Fragment::elem_text("id", "13"),
                    Fragment::elem_text("name", "Mouse"),
                    Fragment::elem_text("price", "10.30"),
                ],
            ),
            pos: InsertPos::Into,
        };
        let undo = apply_update(&mut doc, &op).unwrap();
        assert_eq!(eval(&doc, &q("/products/product")).len(), 3);
        assert_eq!(eval(&doc, &q("/products/product[id=13]")).len(), 1);
        undo_update(&mut doc, &undo).unwrap();
        assert_eq!(eval(&doc, &q("/products/product")).len(), 2);
        doc.check_integrity().unwrap();
    }

    #[test]
    fn insert_before_and_after() {
        let mut doc = products();
        let before = UpdateOp::Insert {
            target: q("/products/product[id=14]"),
            fragment: Fragment::elem_text("marker", "here"),
            pos: InsertPos::Before,
        };
        apply_update(&mut doc, &before).unwrap();
        let kids = doc.children(doc.root()).unwrap();
        assert_eq!(doc.label_str(kids[1]).unwrap(), "marker");
    }

    #[test]
    fn insert_on_empty_target_fails() {
        let mut doc = products();
        let op = UpdateOp::Insert {
            target: q("/products/nothing"),
            fragment: Fragment::text("x"),
            pos: InsertPos::Into,
        };
        assert!(matches!(
            apply_update(&mut doc, &op),
            Err(UpdateError::EmptyTarget(_))
        ));
    }

    #[test]
    fn remove_and_undo_preserves_positions() {
        let mut doc = products();
        let before = doc.to_xml();
        let op = UpdateOp::Remove {
            target: q("/products/product[id=4]"),
        };
        let undo = apply_update(&mut doc, &op).unwrap();
        assert_eq!(eval(&doc, &q("/products/product")).len(), 1);
        undo_update(&mut doc, &undo).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn remove_multiple_targets() {
        let mut doc = products();
        let op = UpdateOp::Remove {
            target: q("/products/product/price"),
        };
        let undo = apply_update(&mut doc, &op).unwrap();
        assert!(eval(&doc, &q("//price")).is_empty());
        undo_update(&mut doc, &undo).unwrap();
        assert_eq!(eval(&doc, &q("//price")).len(), 2);
    }

    #[test]
    fn remove_nested_targets_handles_coverage() {
        // Both /r/a and /r/a/b match //*; removing a removes b.
        let mut doc = parse("<r><a><b/></a></r>").unwrap();
        let op = UpdateOp::Remove { target: q("//*") };
        // //* matches r too — but r is the root and cannot be removed;
        // restrict to /r/* to stay valid.
        let _ = op;
        let op = UpdateOp::Remove { target: q("/r//b") };
        apply_update(&mut doc, &op).unwrap();
        assert!(eval(&doc, &q("//b")).is_empty());
        let mut doc = parse("<r><a><b/></a></r>").unwrap();
        let both = UpdateOp::Remove { target: q("/r/*") };
        let undo = apply_update(&mut doc, &both).unwrap();
        assert_eq!(doc.node_count(), 1);
        undo_update(&mut doc, &undo).unwrap();
        assert_eq!(doc.node_count(), 3);
        doc.check_integrity().unwrap();
    }

    #[test]
    fn rename_round_trip() {
        let mut doc = products();
        let op = UpdateOp::Rename {
            target: q("/products/product/name"),
            new_label: "title".into(),
        };
        let undo = apply_update(&mut doc, &op).unwrap();
        assert_eq!(eval(&doc, &q("//title")).len(), 2);
        assert!(eval(&doc, &q("//name")).is_empty());
        undo_update(&mut doc, &undo).unwrap();
        assert_eq!(eval(&doc, &q("//name")).len(), 2);
    }

    #[test]
    fn change_round_trip() {
        let mut doc = products();
        let op = UpdateOp::Change {
            target: q("/products/product[id=4]/price"),
            new_value: "99.99".into(),
        };
        let undo = apply_update(&mut doc, &op).unwrap();
        let price = eval(&doc, &q("/products/product[id=4]/price"));
        assert_eq!(doc.text_of(price[0]).unwrap(), "99.99");
        undo_update(&mut doc, &undo).unwrap();
        let price = eval(&doc, &q("/products/product[id=4]/price"));
        assert_eq!(doc.text_of(price[0]).unwrap(), "120.00");
    }

    #[test]
    fn transpose_round_trip() {
        let mut doc = products();
        let before = doc.to_xml();
        let op = UpdateOp::Transpose {
            a: q("/products/product[id=4]"),
            b: q("/products/product[id=14]"),
        };
        let undo = apply_update(&mut doc, &op).unwrap();
        assert_ne!(doc.to_xml(), before);
        undo_update(&mut doc, &undo).unwrap();
        assert_eq!(doc.to_xml(), before);
    }

    #[test]
    fn transpose_requires_single_matches() {
        let mut doc = products();
        let op = UpdateOp::Transpose {
            a: q("/products/product"),
            b: q("/products/product[id=4]"),
        };
        assert!(matches!(
            apply_update(&mut doc, &op),
            Err(UpdateError::AmbiguousTranspose { matches: 2, .. })
        ));
    }

    #[test]
    fn op_metadata() {
        let op = UpdateOp::Remove { target: q("/a/b") };
        assert_eq!(op.op_name(), "remove");
        assert_eq!(op.queries().len(), 1);
        assert_eq!(op.to_string(), "remove /a/b");
        let op = UpdateOp::Transpose {
            a: q("/a"),
            b: q("/b"),
        };
        assert_eq!(op.queries().len(), 2);
    }
}
