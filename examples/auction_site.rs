//! A distributed XMark auction site: generate the base, fragment it over
//! four sites, run a mixed DTXTester workload, and print a mini report in
//! the style of the paper's Fig. 12.
//!
//! ```text
//! cargo run --release --example auction_site
//! ```

use dtx::core::{Cluster, ClusterConfig, ProtocolKind};
use dtx::xmark::fragment::{allocate, fragment_doc, load_allocation, ReplicationMode};
use dtx::xmark::generator::{generate, XmarkConfig};
use dtx::xmark::tester::run_workload;
use dtx::xmark::workload::{generate as gen_workload, WorkloadConfig};
use std::time::Duration;

fn main() {
    let sites = 4u16;
    let base = generate(XmarkConfig::sized(200_000, 42));
    println!(
        "generated XMark base: {} KiB, {} persons, {} open auctions",
        base.byte_size() / 1024,
        base.person_ids.len(),
        base.open_auction_ids.len()
    );
    let frags = fragment_doc(&base, sites as usize);
    println!(
        "fragmented into {} parts (balance {:.3})",
        frags.fragments.len(),
        frags.balance_ratio()
    );

    let cluster = Cluster::start(ClusterConfig::new(sites, ProtocolKind::Xdgl).with_lan_profile());
    let alloc = allocate(&base, &frags, sites, ReplicationMode::Partial);
    print!("{}", alloc.render());
    load_allocation(&cluster, &alloc).expect("load");

    // 20 clients x 5 txns x 5 ops, 30 % update transactions.
    let workload = gen_workload(WorkloadConfig::with_updates(20, 30, 7), &frags);
    println!(
        "running {} transactions ({} update txns) from {} clients...",
        workload.total_txns(),
        workload.update_txns(),
        workload.clients.len()
    );
    let report = run_workload(&cluster, &workload);
    println!(
        "committed {}/{} | deadlock victims {} | mean response {:.2} ms | wall {:.2} s",
        report.committed(),
        report.outcomes.len(),
        report.deadlocks(),
        report.mean_response().as_secs_f64() * 1e3,
        report.wall.as_secs_f64()
    );

    // Cumulative commits per interval (Fig. 12 style).
    let bucket = (report.wall / 10).max(Duration::from_millis(1));
    println!("t(ms)\tcumulative commits\tconcurrency");
    let tp = cluster.metrics().throughput_series(bucket);
    let cc = cluster.metrics().concurrency_series(bucket);
    for (i, (t, commits)) in tp.iter().enumerate() {
        let degree = cc.get(i).map(|(_, d)| *d).unwrap_or(0.0);
        println!("{:.0}\t{}\t{:.2}", t.as_secs_f64() * 1e3, commits, degree);
    }
    println!(
        "network: {} messages, {} KiB",
        cluster.net_messages(),
        cluster.net_bytes() / 1024
    );
    cluster.shutdown();
}
