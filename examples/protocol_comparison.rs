//! Compare the three concurrency-control protocols on the same workload —
//! a one-command taste of the paper's evaluation.
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! ```

use dtx::core::{Cluster, ClusterConfig, ProtocolKind};
use dtx::xmark::fragment::{allocate, fragment_doc, load_allocation, ReplicationMode};
use dtx::xmark::generator::{generate, XmarkConfig};
use dtx::xmark::tester::run_workload;
use dtx::xmark::workload::{generate as gen_workload, WorkloadConfig};

fn main() {
    let sites = 2u16;
    println!("protocol\tmean_resp_ms\tdeadlocks\tcommitted/total");
    for protocol in [
        ProtocolKind::Xdgl,
        ProtocolKind::Node2Pl,
        ProtocolKind::DocLock,
    ] {
        // Fresh base and cluster per protocol so runs are independent.
        let base = generate(XmarkConfig::sized(100_000, 99));
        let frags = fragment_doc(&base, sites as usize);
        let cluster = Cluster::start(ClusterConfig::new(sites, protocol).with_lan_profile());
        let alloc = allocate(&base, &frags, sites, ReplicationMode::Partial);
        load_allocation(&cluster, &alloc).expect("load");
        let workload = gen_workload(WorkloadConfig::with_updates(10, 40, 5), &frags);
        let report = run_workload(&cluster, &workload);
        println!(
            "{}\t{:.2}\t{}\t{}/{}",
            protocol.name(),
            report.mean_response().as_secs_f64() * 1e3,
            report.deadlocks(),
            report.committed(),
            report.outcomes.len()
        );
        cluster.shutdown();
    }
    println!();
    println!("Expected shape (paper §3): XDGL's fine DataGuide locks give the");
    println!("lowest response time; the tree/document-lock baselines pay heavy");
    println!("lock-management and serialization costs but suffer fewer deadlocks.");
}
