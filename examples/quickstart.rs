//! Quickstart: boot a two-site DTX cluster, load the paper's documents,
//! and run a few transactions.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dtx::core::{Cluster, ClusterConfig, OpSpec, ProtocolKind, SiteId, TxnSpec};
use dtx::xml::{Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};

fn main() {
    // Two sites running the XDGL protocol (the paper's DTX).
    let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));

    // d1 (people) lives on both sites — replicated; d2 (products) only on
    // site 1 — exactly the paper's Fig. 4 layout.
    cluster
        .load_document(
            "d1",
            "<people><person><id>4</id><name>John</name></person></people>",
            &[SiteId(0), SiteId(1)],
        )
        .expect("load d1");
    cluster
        .load_document(
            "d2",
            "<products><product><id>14</id><description>Printer</description>\
             <price>55.50</price></product></products>",
            &[SiteId(1)],
        )
        .expect("load d2");

    // A read transaction: find person 4 (locks acquired at both replicas).
    let out = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![OpSpec::query(
            "d1",
            Query::parse("/people/person[id=4]/name").unwrap(),
        )]),
    );
    println!(
        "t1 status: {:?} ({} ms)",
        out.status,
        out.response_time.as_millis()
    );
    println!("t1 result: {:?}", out.results);

    // An update transaction submitted at site 0 against data held only at
    // site 1: the coordinator ships the operation to the participant.
    let out = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![
            OpSpec::update(
                "d2",
                UpdateOp::Insert {
                    target: Query::parse("/products").unwrap(),
                    fragment: Fragment::elem(
                        "product",
                        vec![
                            Fragment::elem_text("id", "13"),
                            Fragment::elem_text("description", "Mouse"),
                            Fragment::elem_text("price", "10.30"),
                        ],
                    ),
                    pos: InsertPos::Into,
                },
            ),
            OpSpec::query("d2", Query::parse("/products/product/description").unwrap()),
        ]),
    );
    println!("t2 status: {:?}", out.status);
    println!("t2 products now: {:?}", out.results.last());

    println!(
        "cluster sent {} messages ({} bytes) over the simulated LAN",
        cluster.net_messages(),
        cluster.net_bytes()
    );
    let s = cluster.metrics().summary();
    println!("committed {} / terminated {}", s.committed, s.terminated);
    cluster.shutdown();
}
