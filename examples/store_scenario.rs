//! The paper's §2.4 execution scenario, end to end.
//!
//! Two sites: s1 serves client c1, s2 serves client c2. Document d1
//! (people) is replicated on both sites; d2 (products) lives only on s2
//! (Fig. 4). Transactions t1 and t2 interleave so that t1 holds query
//! locks on d1 while t2 holds query locks on d2, then each tries to
//! insert into the other's document — a **distributed deadlock** (Fig. 6)
//! that neither site can see alone. The periodic detector (Algorithm 4)
//! unions the wait-for graphs, finds the circle, and aborts the most
//! recent transaction (t2). t1 then commits, and t3 — submitted
//! afterwards, like the paper's client c2 deciding to move on — commits
//! cleanly.
//!
//! ```text
//! cargo run --example store_scenario
//! ```

use dtx::core::{Cluster, ClusterConfig, OpSpec, ProtocolKind, SiteId, TxnSpec};
use dtx::dataguide::DataGuide;
use dtx::xml::{Document, Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};
use std::time::Duration;

const D1: &str = "<people>\
                    <person><id>4</id><name>John</name></person>\
                  </people>";
const D2: &str = "<products>\
                    <product><id>4</id><description>Monitor</description><price>120.00</price></product>\
                    <product><id>14</id><description>Printer</description><price>55.50</price></product>\
                  </products>";

fn main() {
    println!("== DataGuides (paper Fig. 5) ==");
    for (name, xml) in [("d1", D1), ("d2", D2)] {
        let guide = DataGuide::build(&Document::parse(xml).unwrap());
        println!("DataGuide of {name}:\n{}", guide.render());
    }

    let mut config = ClusterConfig::new(2, ProtocolKind::Xdgl);
    config.scheduler.deadlock_period = Duration::from_millis(25);
    let cluster = Cluster::start(config);
    let (s1, s2) = (SiteId(0), SiteId(1));
    cluster.load_document("d1", D1, &[s1, s2]).unwrap();
    cluster.load_document("d2", D2, &[s2]).unwrap();

    // t1 (client c1 at s1): query person 4, then insert product Mouse.
    let t1 = TxnSpec::new(vec![
        OpSpec::query("d1", Query::parse("/people/person[id=4]").unwrap()),
        OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: Query::parse("/products").unwrap(),
                fragment: Fragment::elem(
                    "product",
                    vec![
                        Fragment::elem_text("id", "13"),
                        Fragment::elem_text("description", "Mouse"),
                        Fragment::elem_text("price", "10.30"),
                    ],
                ),
                pos: InsertPos::Into,
            },
        ),
    ]);
    // t2 (client c2 at s2): query all products, then insert person Patricia.
    let t2 = TxnSpec::new(vec![
        OpSpec::query("d2", Query::parse("/products/product").unwrap()),
        OpSpec::update(
            "d1",
            UpdateOp::Insert {
                target: Query::parse("/people").unwrap(),
                fragment: Fragment::elem(
                    "person",
                    vec![
                        Fragment::elem_text("id", "22"),
                        Fragment::elem_text("name", "Patricia"),
                    ],
                ),
                pos: InsertPos::Into,
            },
        ),
    ]);

    println!("== submitting t1 (c1@s1) and t2 (c2@s2) concurrently ==");
    let rx1 = cluster.submit_async(s1, t1);
    let rx2 = cluster.submit_async(s2, t2);
    let o1 = rx1.recv().expect("t1 terminates");
    let o2 = rx2.recv().expect("t2 terminates");
    println!("t1 ({:?}): {:?}", o1.txn, o1.status);
    println!("t2 ({:?}): {:?}", o2.txn, o2.status);
    if o2.deadlocked() {
        println!("-> distributed deadlock detected; t2 (the most recent) was the victim, as in the paper");
    } else if o1.deadlocked() {
        println!("-> distributed deadlock detected; t1 was the victim this interleaving");
    } else {
        println!("-> this interleaving serialized without deadlock (both committed)");
    }

    // Client c2 discards t2 and submits t3: query product 14, insert
    // Keyboard (the paper's follow-up).
    let t3 = TxnSpec::new(vec![
        OpSpec::query("d2", Query::parse("/products/product[id=14]").unwrap()),
        OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: Query::parse("/products").unwrap(),
                fragment: Fragment::elem(
                    "product",
                    vec![
                        Fragment::elem_text("id", "32"),
                        Fragment::elem_text("description", "Keyboard"),
                        Fragment::elem_text("price", "9.90"),
                    ],
                ),
                pos: InsertPos::Into,
            },
        ),
    ]);
    let o3 = cluster.submit(s2, t3);
    println!("t3 ({:?}): {:?}", o3.txn, o3.status);

    // Final state of d2 as seen through a read transaction.
    let check = cluster.submit(
        s2,
        TxnSpec::new(vec![OpSpec::query(
            "d2",
            Query::parse("/products/product/description").unwrap(),
        )]),
    );
    println!("products at the end: {:?}", check.results);
    cluster.shutdown();
}
