//! # DTX — Distributed Transactions on XML
//!
//! A from-scratch Rust reproduction of **"A distributed concurrency control
//! mechanism for XML data"** (Moreira, Sousa, Machado; ICPP Workshops 2009,
//! extended in J. Comput. Syst. Sci. 77 (2011) 1009–1022).
//!
//! This facade crate re-exports the whole workspace public API:
//!
//! * [`xml`] — in-memory XML document model, parser and serializer;
//! * [`xpath`] — the XPath subset and five-operation update language XDGL
//!   understands;
//! * [`dataguide`] — strong DataGuide structural summaries with extents;
//! * [`locks`] — XDGL lock modes/table/wait-for graphs plus the Node2PL and
//!   DocLock baseline protocols;
//! * [`storage`] — the `DataManager` storage abstraction with a Sedna-like
//!   in-memory store and a file store;
//! * [`net`] — the simulated site-to-site transport;
//! * [`trace`] — causal event tracing: per-site lock-free rings, a merging
//!   collector, and the protocol-invariant checker [`trace::check`];
//! * [`core`] — the DTX engine itself: schedulers, lock managers,
//!   coordinator/participant transaction processing, distributed deadlock
//!   detection, clusters with multi-coordinator submission (every site can
//!   coordinate, round-robin via `Cluster::submit_round_robin`) and metrics
//!   with per-coordinator accounting and mergeable latency histograms;
//! * [`xmark`] — XMark-like data/workload generation, fragmentation and the
//!   DTXTester client simulator.
//!
//! ## Quickstart
//!
//! ```
//! use dtx::core::{Cluster, ClusterConfig, ProtocolKind};
//! use dtx::xpath::Query;
//!
//! // A two-site cluster running the XDGL protocol.
//! let mut config = ClusterConfig::new(2, ProtocolKind::Xdgl);
//! config.seed = 7;
//! let cluster = Cluster::start(config);
//!
//! // Register the paper's document d2 on site 1.
//! cluster.load_document(
//!     "d2",
//!     "<products><product><id>4</id><price>10.30</price></product></products>",
//!     &[dtx::core::SiteId(1)],
//! ).unwrap();
//!
//! // Run a read transaction from a client attached to site 0.
//! let txn = dtx::core::TxnSpec::new(vec![
//!     dtx::core::OpSpec::query("d2", Query::parse("/products/product[id=4]").unwrap()),
//! ]);
//! let outcome = cluster.submit(dtx::core::SiteId(0), txn);
//! assert!(outcome.committed());
//! cluster.shutdown();
//! ```

#[doc = include_str!("../ARCHITECTURE.md")]
/// (rendered from `ARCHITECTURE.md`; its item links are verified by
/// `cargo doc -D warnings` in CI, so the walkthrough cannot drift from
/// the code it narrates)
pub mod architecture {}

pub use dtx_core as core;
pub use dtx_dataguide as dataguide;
pub use dtx_locks as locks;
pub use dtx_net as net;
pub use dtx_storage as storage;
pub use dtx_trace as trace;
pub use dtx_xmark as xmark;
pub use dtx_xml as xml;
pub use dtx_xpath as xpath;
