//! Cross-crate consistency tests: replica agreement, rollback integrity,
//! and serializability evidence under concurrent mixed workloads.

use dtx::core::{Cluster, ClusterConfig, OpSpec, ProtocolKind, SiteId, TxnSpec};
use dtx::xmark::fragment::{allocate, fragment_doc, load_allocation, ReplicationMode, LOGICAL_DOC};
use dtx::xmark::generator::{generate, XmarkConfig};
use dtx::xmark::tester::run_workload;
use dtx::xmark::workload::{generate as gen_workload, WorkloadConfig};
use dtx::xml::{Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};

fn person_count(cluster: &Cluster, site: SiteId, doc: &str) -> usize {
    let out = cluster.submit(
        site,
        TxnSpec::new(vec![OpSpec::query(
            doc,
            Query::parse("/people/person").unwrap(),
        )]),
    );
    assert!(out.committed(), "{:?}", out.status);
    match &out.results[0] {
        dtx::core::OpResult::Query { values } => values.len(),
        other => panic!("{other:?}"),
    }
}

#[test]
fn concurrent_inserts_commit_exactly_once_per_commit() {
    // N clients each insert one person into a replicated document; the
    // final count must equal the initial count plus the number of
    // *committed* inserts — on every replica.
    let cluster = Cluster::start(ClusterConfig::new(3, ProtocolKind::Xdgl));
    let sites = [SiteId(0), SiteId(1), SiteId(2)];
    cluster
        .load_document("d1", "<people><person><id>0</id></person></people>", &sites)
        .unwrap();
    let n = 12;
    let rxs: Vec<_> = (0..n)
        .map(|i| {
            cluster.submit_async(
                sites[i % 3],
                TxnSpec::new(vec![OpSpec::update(
                    "d1",
                    UpdateOp::Insert {
                        target: Query::parse("/people").unwrap(),
                        fragment: Fragment::elem(
                            "person",
                            vec![Fragment::elem_text("id", (100 + i).to_string())],
                        ),
                        pos: InsertPos::Into,
                    },
                )]),
            )
        })
        .collect();
    let committed = rxs
        .into_iter()
        .filter(|rx| rx.recv().unwrap().committed())
        .count();
    for s in sites {
        assert_eq!(
            person_count(&cluster, s, "d1"),
            1 + committed,
            "replica at {s} must reflect exactly the committed inserts"
        );
    }
    cluster.shutdown();
}

#[test]
fn replicas_agree_after_mixed_workload() {
    // Total replication: after a mixed workload every site's copy of the
    // logical document must serialize identically.
    let base = generate(XmarkConfig::sized(30_000, 77));
    let frags = fragment_doc(&base, 2);
    let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
    let alloc = allocate(&base, &frags, 2, ReplicationMode::Total);
    load_allocation(&cluster, &alloc).unwrap();
    let w = gen_workload(WorkloadConfig::with_updates(6, 60, 3), &frags);
    let report = run_workload(&cluster, &w);
    assert!(report.committed() > 0);

    // Compare the replicas through identical read transactions.
    let q = Query::parse("/site/people/person/id").unwrap();
    let mut snapshots = Vec::new();
    for s in cluster.sites() {
        let out = cluster.submit(s, TxnSpec::new(vec![OpSpec::query(LOGICAL_DOC, q.clone())]));
        assert!(out.committed());
        snapshots.push(out.results[0].clone());
    }
    assert_eq!(snapshots[0], snapshots[1], "replicas diverged");
    cluster.shutdown();
}

#[test]
fn fragmented_reads_union_all_fragments() {
    let base = generate(XmarkConfig::sized(40_000, 55));
    let frags = fragment_doc(&base, 3);
    let cluster = Cluster::start(ClusterConfig::new(3, ProtocolKind::Xdgl));
    let alloc = allocate(&base, &frags, 3, ReplicationMode::Partial);
    load_allocation(&cluster, &alloc).unwrap();
    // A logical-document scan must see every person regardless of which
    // fragment holds it.
    let out = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![OpSpec::query(
            LOGICAL_DOC,
            Query::parse("/site/people/person/id").unwrap(),
        )]),
    );
    assert!(out.committed(), "{:?}", out.status);
    match &out.results[0] {
        dtx::core::OpResult::Query { values } => {
            assert_eq!(values.len(), base.person_ids.len(), "union over fragments");
        }
        other => panic!("{other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn fragmented_update_applies_in_exactly_one_fragment() {
    let base = generate(XmarkConfig::sized(40_000, 56));
    let frags = fragment_doc(&base, 2);
    let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
    let alloc = allocate(&base, &frags, 2, ReplicationMode::Partial);
    load_allocation(&cluster, &alloc).unwrap();
    // Change one auction's current price by id: only the owning fragment
    // matches; the merged affected-count must be exactly 1.
    let aid = base.open_auction_ids[0];
    let out = cluster.submit(
        SiteId(1),
        TxnSpec::new(vec![OpSpec::update(
            LOGICAL_DOC,
            UpdateOp::Change {
                target: Query::parse(&format!(
                    "/site/open_auctions/open_auction[id={aid}]/current"
                ))
                .unwrap(),
                new_value: "999.99".into(),
            },
        )]),
    );
    assert!(out.committed(), "{:?}", out.status);
    assert_eq!(out.results[0], dtx::core::OpResult::Update { affected: 1 });
    // And the read sees the new value exactly once.
    let check = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![OpSpec::query(
            LOGICAL_DOC,
            Query::parse(&format!(
                "/site/open_auctions/open_auction[id={aid}]/current"
            ))
            .unwrap(),
        )]),
    );
    match &check.results[0] {
        dtx::core::OpResult::Query { values } => assert_eq!(values, &vec!["999.99".to_owned()]),
        other => panic!("{other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn update_matching_no_fragment_aborts() {
    let base = generate(XmarkConfig::sized(30_000, 57));
    let frags = fragment_doc(&base, 2);
    let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
    let alloc = allocate(&base, &frags, 2, ReplicationMode::Partial);
    load_allocation(&cluster, &alloc).unwrap();
    let out = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![OpSpec::update(
            LOGICAL_DOC,
            UpdateOp::Change {
                target: Query::parse("/site/open_auctions/open_auction[id=987654321]/current")
                    .unwrap(),
                new_value: "1".into(),
            },
        )]),
    );
    assert!(
        !out.committed(),
        "an update matching nothing anywhere must abort"
    );
    cluster.shutdown();
}

#[test]
fn every_protocol_terminates_the_same_workload() {
    for protocol in [
        ProtocolKind::Xdgl,
        ProtocolKind::Node2Pl,
        ProtocolKind::DocLock,
    ] {
        let base = generate(XmarkConfig::sized(25_000, 88));
        let frags = fragment_doc(&base, 2);
        let cluster = Cluster::start(ClusterConfig::new(2, protocol));
        let alloc = allocate(&base, &frags, 2, ReplicationMode::Partial);
        load_allocation(&cluster, &alloc).unwrap();
        let w = gen_workload(WorkloadConfig::with_updates(4, 50, 9), &frags);
        let report = run_workload(&cluster, &w);
        assert_eq!(
            report.committed() + report.aborted(),
            report.outcomes.len(),
            "{}: every transaction must terminate",
            protocol.name()
        );
        assert!(
            report.committed() > 0,
            "{}: progress required",
            protocol.name()
        );
        cluster.shutdown();
    }
}
