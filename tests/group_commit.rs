//! Group-commit batching properties — the adaptive flush window.
//!
//! The scheduler's termination outbox flushes once per event-loop tick
//! by default (`flush_window = 0`). A nonzero window lets a *light*
//! decision trickle coalesce: the outbox is held until either the
//! latency budget elapses or enough decisions are pending. The pinned
//! property: on a light workload, a nonzero budget **strictly
//! increases** the mean number of per-transaction decisions carried per
//! termination message.

use dtx::core::{Cluster, ClusterConfig, OpSpec, ProtocolKind, SiteId, TxnSpec};
use dtx::xpath::{Query, UpdateOp};
use std::time::Duration;

const DOC: &str = "<inventory><item><id>1</id><qty>10</qty></item></inventory>";

/// Runs a light workload — `n` single-update transactions submitted with
/// a small client-side pause between them, each against its **own**
/// document replicated on both sites (independent lock targets, so the
/// transactions pipeline instead of serializing, and every commit has a
/// remote participant and rides a `TerminateBatch`) — and returns the
/// realized mean batch size: unbatched-equivalent termination messages
/// over actual ones.
fn mean_batch_size(flush_window: Duration, n: usize) -> f64 {
    let config = ClusterConfig::new(2, ProtocolKind::Xdgl).with_flush_window(flush_window);
    let cluster = Cluster::start(config);
    for i in 0..n {
        cluster
            .load_document(&format!("inv{i}"), DOC, &[SiteId(0), SiteId(1)])
            .unwrap();
    }
    let mut pending = Vec::new();
    for i in 0..n {
        pending.push(cluster.submit_async(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::update(
                format!("inv{i}"),
                UpdateOp::Change {
                    target: Query::parse("/inventory/item/qty").unwrap(),
                    new_value: format!("{i}"),
                },
            )]),
        ));
        // Light load: decisions trickle in instead of arriving as one
        // burst, which is exactly the regime the window targets.
        std::thread::sleep(Duration::from_micros(300));
    }
    for rx in pending {
        let out = rx.recv().expect("scheduler alive");
        assert!(out.committed(), "{:?}", out.status);
    }
    let metrics = cluster.metrics();
    let batched = metrics.termination_msgs();
    let unbatched = metrics.termination_msgs_unbatched();
    cluster.shutdown();
    assert!(batched > 0, "remote commits must ride TerminateBatch");
    unbatched as f64 / batched as f64
}

#[test]
fn nonzero_flush_window_strictly_increases_mean_batch_size() {
    const TXNS: usize = 40;
    let per_tick = mean_batch_size(Duration::ZERO, TXNS);
    let windowed = mean_batch_size(Duration::from_millis(4), TXNS);
    // Per-tick flushing on a trickle sends nearly one decision per
    // message; a 4 ms budget must coalesce several.
    assert!(
        windowed > per_tick,
        "a nonzero flush window must increase the mean batch size \
         (per-tick {per_tick:.3} vs windowed {windowed:.3})"
    );
}

#[test]
fn zero_window_remains_the_default_and_flushes_promptly() {
    let config = ClusterConfig::new(2, ProtocolKind::Xdgl);
    assert_eq!(config.scheduler.flush_window, Duration::ZERO);
    // A single distributed update terminates without waiting out any
    // window: the whole round-trip stays well under a second.
    let cluster = Cluster::start(config);
    cluster
        .load_document("inv", DOC, &[SiteId(0), SiteId(1)])
        .unwrap();
    let t0 = std::time::Instant::now();
    let out = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![OpSpec::update(
            "inv",
            UpdateOp::Change {
                target: Query::parse("/inventory/item/qty").unwrap(),
                new_value: "7".into(),
            },
        )]),
    );
    assert!(out.committed(), "{:?}", out.status);
    assert!(
        t0.elapsed() < Duration::from_secs(1),
        "default path must not hold terminations ({:?})",
        t0.elapsed()
    );
    cluster.shutdown();
}

#[test]
fn windowed_terminations_all_reach_participants_on_shutdown() {
    // A large window with decisions still held must not strand them:
    // shutdown force-flushes the outbox, so every transaction still
    // terminates cleanly (and locks release at participants).
    let config =
        ClusterConfig::new(2, ProtocolKind::Xdgl).with_flush_window(Duration::from_millis(250));
    let cluster = Cluster::start(config);
    cluster
        .load_document("inv", DOC, &[SiteId(0), SiteId(1)])
        .unwrap();
    let out = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![OpSpec::update(
            "inv",
            UpdateOp::Change {
                target: Query::parse("/inventory/item/qty").unwrap(),
                new_value: "3".into(),
            },
        )]),
    );
    assert!(out.committed(), "{:?}", out.status);
    cluster.shutdown();
}
