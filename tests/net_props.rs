//! Transport-level properties of the sharded (per-link) network.
//!
//! The scheduler's correctness leans on exactly three transport
//! guarantees (see `dtx-net`'s crate docs); these tests pin them under
//! the per-link delivery workers introduced with the switched topology:
//!
//! 1. **Per-pair FIFO** under concurrent jittered senders with
//!    size-dependent latency — delivery order equals send order on every
//!    ordered `(from, to)` link, no matter how links interleave globally.
//! 2. **Seed determinism** — the delay schedule of every link is a pure
//!    function of `(seed, from, to, k, bytes)`: same seed ⇒ same
//!    schedule, different seed ⇒ a different one.
//! 3. **A termination message never overtakes the operation it
//!    terminates**: a small `TerminateBatch` sent after a large
//!    `ExecRemote` on the same link arrives after it, even though its
//!    computed delay is far shorter.

use dtx::core::{Message, OpSpec, SiteId, TxnId};
use dtx::net::{link_delay, Envelope, LatencyModel, Network, Wire};
use dtx::xml::document::{Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};
use std::time::Duration;

#[derive(Debug)]
struct Frame {
    from: u16,
    seq: u32,
    bytes: usize,
}

impl Wire for Frame {
    fn wire_size(&self) -> usize {
        self.bytes
    }
}

/// Deterministic per-thread byte-size stream (so runs are reproducible).
fn size_stream(seed: u64) -> impl FnMut() -> usize {
    let mut x = seed | 1;
    move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        // 16 B .. ~8 KiB: small control frames mixed with fat payloads,
        // so size-dependent latency would reorder without the clamp.
        16 + (x % 8192) as usize
    }
}

#[test]
fn per_link_fifo_survives_concurrent_jittered_storm() {
    const SITES: u16 = 4;
    const PER_LINK: u32 = 120;
    let model = LatencyModel {
        fixed: Duration::from_micros(200),
        per_kib: Duration::from_micros(400),
        jitter: Duration::from_micros(300),
        seed: 0xF1F0,
    };
    let net: Network<Frame> = Network::new(model);
    let endpoints: Vec<_> = (0..SITES).map(|s| net.register(SiteId(s))).collect();
    std::thread::scope(|scope| {
        for ep in endpoints {
            scope.spawn(move || {
                let mut next = vec![0u32; SITES as usize];
                for _ in 0..(SITES as u64 - 1) * PER_LINK as u64 {
                    let env: Envelope<Frame> = ep
                        .recv_timeout(Duration::from_secs(30))
                        .expect("network alive")
                        .expect("storm delivers within the timeout");
                    assert_eq!(
                        env.payload.seq, next[env.payload.from as usize],
                        "link {} -> {} delivered out of send order",
                        env.payload.from, ep.site
                    );
                    next[env.payload.from as usize] += 1;
                }
            });
        }
        for from in 0..SITES {
            let net = net.clone();
            scope.spawn(move || {
                let mut size = size_stream(0xBEEF ^ from as u64);
                for seq in 0..PER_LINK {
                    for to in 0..SITES {
                        if to != from {
                            let bytes = size();
                            net.send(SiteId(from), SiteId(to), Frame { from, seq, bytes })
                                .expect("send");
                        }
                    }
                }
            });
        }
    });
    net.shutdown();
}

#[test]
fn same_seed_gives_identical_per_link_delay_schedules() {
    let schedule = |seed: u64| -> Vec<Duration> {
        let model = LatencyModel::lan(seed);
        let mut out = Vec::new();
        for from in 0..4u16 {
            for to in 0..4u16 {
                if from == to {
                    continue;
                }
                for k in 0..32u64 {
                    let bytes = 16 + ((k * 977) % 8192) as usize;
                    out.push(link_delay(&model, SiteId(from), SiteId(to), k, bytes));
                }
            }
        }
        out
    };
    let a = schedule(2009);
    let b = schedule(2009);
    assert_eq!(a, b, "same seed must reproduce every link's delay stream");
    let c = schedule(2010);
    assert_ne!(a, c, "a different seed must draw a different stream");
}

#[test]
fn terminate_batch_never_overtakes_exec_remote() {
    // A fat ExecRemote (64 KiB fragment) followed by a tiny
    // TerminateBatch on the same link: the batch's computed delay is
    // orders of magnitude shorter, but it must still arrive second —
    // the scheduler aborts in-flight operations relying on exactly this.
    let model = LatencyModel {
        fixed: Duration::from_micros(100),
        per_kib: Duration::from_millis(2),
        jitter: Duration::from_micros(500),
        seed: 77,
    };
    for round in 0..5u64 {
        let mut m = model;
        m.seed = 77 + round;
        let net: Network<Message> = Network::new(m);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let big_op = OpSpec::update(
            "doc",
            UpdateOp::Insert {
                target: Query::parse("/r").unwrap(),
                fragment: Fragment::elem_text("blob", "x".repeat(64 * 1024)),
                pos: InsertPos::Into,
            },
        );
        net.send(
            SiteId(1),
            SiteId(0),
            Message::ExecRemote {
                txn: TxnId(1),
                coordinator: SiteId(1),
                op_seq: 0,
                op: big_op,
                corr: 1,
                update_txn: true,
                doc_version: 1,
                fragment: false,
            },
        )
        .unwrap();
        net.send(
            SiteId(1),
            SiteId(0),
            Message::TerminateBatch {
                commits: vec![],
                aborts: vec![TxnId(1)],
            },
        )
        .unwrap();
        let first = a
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .expect("delivered");
        let second = a
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .expect("delivered");
        assert!(
            matches!(first.payload, Message::ExecRemote { .. }),
            "round {round}: ExecRemote must arrive first, got {:?}",
            first.payload
        );
        assert!(
            matches!(second.payload, Message::TerminateBatch { .. }),
            "round {round}: TerminateBatch must arrive second, got {:?}",
            second.payload
        );
        net.shutdown();
    }
}
