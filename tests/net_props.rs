//! Transport-level properties of the delayed-delivery network.
//!
//! The scheduler's correctness leans on exactly three transport
//! guarantees (see `dtx-net`'s crate docs); these tests pin them under
//! the default timer-wheel reactor and the two baseline topologies
//! (thread-per-link, shared hub):
//!
//! 1. **Per-pair FIFO** under concurrent jittered senders with
//!    size-dependent latency — delivery order equals send order on every
//!    ordered `(from, to)` link, no matter how links interleave globally.
//! 2. **Seed determinism** — the delay schedule of every link is a pure
//!    function of `(seed, from, to, k, bytes)`: same seed ⇒ same
//!    schedule, different seed ⇒ a different one.
//! 3. **A termination message never overtakes the operation it
//!    terminates**: a small `TerminateBatch` sent after a large
//!    `ExecRemote` on the same link arrives after it, even though its
//!    computed delay is far shorter.

use dtx::core::{Message, OpSpec, SiteId, TxnId};
use dtx::net::{link_delay, Envelope, LatencyModel, NetConfig, Network, Topology, Wire};
use dtx::xml::document::{Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Frame {
    from: u16,
    seq: u32,
    bytes: usize,
}

impl Wire for Frame {
    fn wire_size(&self) -> usize {
        self.bytes
    }
}

/// Deterministic per-thread byte-size stream (so runs are reproducible).
fn size_stream(seed: u64) -> impl FnMut() -> usize {
    let mut x = seed | 1;
    move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        // 16 B .. ~8 KiB: small control frames mixed with fat payloads,
        // so size-dependent latency would reorder without the clamp.
        16 + (x % 8192) as usize
    }
}

#[test]
fn per_link_fifo_survives_concurrent_jittered_storm() {
    const SITES: u16 = 4;
    const PER_LINK: u32 = 120;
    let model = LatencyModel {
        fixed: Duration::from_micros(200),
        per_kib: Duration::from_micros(400),
        jitter: Duration::from_micros(300),
        seed: 0xF1F0,
    };
    let net: Network<Frame> = Network::new(model);
    let endpoints: Vec<_> = (0..SITES).map(|s| net.register(SiteId(s))).collect();
    std::thread::scope(|scope| {
        for ep in endpoints {
            scope.spawn(move || {
                let mut next = vec![0u32; SITES as usize];
                for _ in 0..(SITES as u64 - 1) * PER_LINK as u64 {
                    let env: Envelope<Frame> = ep
                        .recv_timeout(Duration::from_secs(30))
                        .expect("network alive")
                        .expect("storm delivers within the timeout");
                    assert_eq!(
                        env.payload.seq, next[env.payload.from as usize],
                        "link {} -> {} delivered out of send order",
                        env.payload.from, ep.site
                    );
                    next[env.payload.from as usize] += 1;
                }
            });
        }
        for from in 0..SITES {
            let net = net.clone();
            scope.spawn(move || {
                let mut size = size_stream(0xBEEF ^ from as u64);
                for seq in 0..PER_LINK {
                    for to in 0..SITES {
                        if to != from {
                            let bytes = size();
                            net.send(SiteId(from), SiteId(to), Frame { from, seq, bytes })
                                .expect("send");
                        }
                    }
                }
            });
        }
    });
    net.shutdown();
}

/// The same all-to-all jittered storm, against every delivery topology
/// explicitly — the FIFO contract is topology-independent (the default
/// reactor is additionally covered by the test above, through
/// `Network::new`).
#[test]
fn per_link_fifo_holds_under_every_topology() {
    const SITES: u16 = 3;
    const PER_LINK: u32 = 60;
    let model = LatencyModel {
        fixed: Duration::from_micros(200),
        per_kib: Duration::from_micros(400),
        jitter: Duration::from_micros(300),
        seed: 0xAB5E,
    };
    for topology in [
        Topology::Reactor,
        Topology::ThreadPerLink,
        Topology::SharedHub,
    ] {
        let net: Network<Frame> = Network::with_topology(model, topology);
        let endpoints: Vec<_> = (0..SITES).map(|s| net.register(SiteId(s))).collect();
        std::thread::scope(|scope| {
            for ep in endpoints {
                scope.spawn(move || {
                    let mut next = vec![0u32; SITES as usize];
                    for _ in 0..(SITES as u64 - 1) * PER_LINK as u64 {
                        let env: Envelope<Frame> = ep
                            .recv_timeout(Duration::from_secs(30))
                            .expect("network alive")
                            .expect("storm delivers within the timeout");
                        assert_eq!(
                            env.payload.seq, next[env.payload.from as usize],
                            "link {} -> {} out of send order ({topology:?})",
                            env.payload.from, ep.site
                        );
                        next[env.payload.from as usize] += 1;
                    }
                });
            }
            for from in 0..SITES {
                let net = net.clone();
                scope.spawn(move || {
                    let mut size = size_stream(0xFEED ^ from as u64);
                    for seq in 0..PER_LINK {
                        for to in 0..SITES {
                            if to != from {
                                let bytes = size();
                                net.send(SiteId(from), SiteId(to), Frame { from, seq, bytes })
                                    .expect("send");
                            }
                        }
                    }
                });
            }
        });
        net.shutdown();
    }
}

/// Reactor shutdown drain: in-flight delayed messages must not vanish —
/// every accepted message is delivered, in per-link FIFO order, before
/// endpoints disconnect, and the flush skips the remaining sleeps. Same
/// contract the in-crate test pins for the baseline topologies; this one
/// pins it for the reactor across several pool sizes (including a pool
/// larger than the link count).
#[test]
fn reactor_shutdown_flushes_in_flight_messages() {
    let model = LatencyModel {
        fixed: Duration::from_millis(250),
        per_kib: Duration::ZERO,
        jitter: Duration::from_micros(100),
        seed: 9,
    };
    for workers in [1usize, 2, 8] {
        let cfg = NetConfig::default().with_workers(workers);
        let net: Network<Frame> = Network::with_config(model, Topology::Reactor, cfg);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let _c = net.register(SiteId(2));
        for seq in 0..25u32 {
            for from in [1u16, 2] {
                net.send(
                    SiteId(from),
                    SiteId(0),
                    Frame {
                        from,
                        seq,
                        bytes: 64,
                    },
                )
                .expect("send");
            }
        }
        let t0 = Instant::now();
        net.shutdown();
        assert!(
            t0.elapsed() < Duration::from_millis(200),
            "flush must skip the 250ms sleeps (workers={workers}: {:?})",
            t0.elapsed()
        );
        let got = a.drain(100);
        assert_eq!(got.len(), 50, "nothing vanished (workers={workers})");
        for from in [1u16, 2] {
            let link: Vec<u32> = got
                .iter()
                .filter(|e| e.payload.from == from)
                .map(|e| e.payload.seq)
                .collect();
            assert_eq!(
                link,
                (0..25).collect::<Vec<_>>(),
                "link {from} FIFO through the flush (workers={workers})"
            );
        }
        assert!(matches!(a.recv(), Err(dtx::net::NetError::Closed)));
    }
}

/// A worker pool of size 1 serializes every link through one wheel: on
/// top of per-link FIFO, delivery across links follows `deliver_at`
/// (messages in different wheel windows never invert). Delays are spaced
/// several ms apart — far beyond the wheel tick — so each message owns
/// its window and the expected global order is exact. The test then
/// shuts down with messages still in flight: completing at all is the
/// no-deadlock assertion (a worker must never wait on another shard).
#[test]
fn single_worker_pool_orders_cross_link_by_deliver_at_and_shuts_down() {
    // Delay = fixed + per_kib * KiB: distinct sizes give distinct,
    // well-separated delays. No jitter — the order must be exact.
    let model = LatencyModel {
        fixed: Duration::from_millis(10),
        per_kib: Duration::from_millis(8),
        jitter: Duration::ZERO,
        seed: 0,
    };
    let cfg = NetConfig::default().with_workers(1);
    let net: Network<Frame> = Network::with_config(model, Topology::Reactor, cfg);
    let a = net.register(SiteId(0));
    for s in 1..=3u16 {
        net.register(SiteId(s));
    }
    assert_eq!(net.net_config().workers, 1);
    // Send in an order unrelated to the delay order: sender 1 slowest
    // (3 KiB → 34ms), sender 3 fastest (1 KiB → 18ms). All sends happen
    // within well under one delay gap (8ms), so deliver_at order is the
    // size order: 3, 2, 1.
    for from in [1u16, 2, 3] {
        let bytes = 1024 * (4 - from as usize);
        net.send(
            SiteId(from),
            SiteId(0),
            Frame {
                from,
                seq: 0,
                bytes,
            },
        )
        .expect("send");
    }
    let mut got = Vec::new();
    for _ in 0..3 {
        got.push(
            a.recv_timeout(Duration::from_secs(10))
                .expect("network alive")
                .expect("delivered")
                .payload
                .from,
        );
    }
    assert_eq!(
        got,
        vec![3, 2, 1],
        "one worker delivers across links in deliver_at order"
    );
    assert_eq!(net.stats().delivery_threads(), 1);
    // In-flight shutdown: queue a fresh burst on every link and shut
    // down immediately. The single worker must drain everything (in
    // order) and join — if it ever blocked on its own queue or another
    // shard, this would hang, not pass.
    for seq in 0..10u32 {
        for from in [1u16, 2, 3] {
            net.send(
                SiteId(from),
                SiteId(0),
                Frame {
                    from,
                    seq,
                    bytes: 64,
                },
            )
            .expect("send");
        }
    }
    net.shutdown();
    let got = a.drain(100);
    assert_eq!(got.len(), 30, "shutdown drained the in-flight burst");
    for from in [1u16, 2, 3] {
        let link: Vec<u32> = got
            .iter()
            .filter(|e| e.payload.from == from)
            .map(|e| e.payload.seq)
            .collect();
        assert_eq!(link, (0..10).collect::<Vec<_>>(), "link {from} FIFO");
    }
}

#[test]
fn same_seed_gives_identical_per_link_delay_schedules() {
    let schedule = |seed: u64| -> Vec<Duration> {
        let model = LatencyModel::lan(seed);
        let mut out = Vec::new();
        for from in 0..4u16 {
            for to in 0..4u16 {
                if from == to {
                    continue;
                }
                for k in 0..32u64 {
                    let bytes = 16 + ((k * 977) % 8192) as usize;
                    out.push(link_delay(&model, SiteId(from), SiteId(to), k, bytes));
                }
            }
        }
        out
    };
    let a = schedule(2009);
    let b = schedule(2009);
    assert_eq!(a, b, "same seed must reproduce every link's delay stream");
    let c = schedule(2010);
    assert_ne!(a, c, "a different seed must draw a different stream");
}

#[test]
fn terminate_batch_never_overtakes_exec_remote() {
    // A fat ExecRemote (64 KiB fragment) followed by a tiny
    // TerminateBatch on the same link: the batch's computed delay is
    // orders of magnitude shorter, but it must still arrive second —
    // the scheduler aborts in-flight operations relying on exactly this.
    let model = LatencyModel {
        fixed: Duration::from_micros(100),
        per_kib: Duration::from_millis(2),
        jitter: Duration::from_micros(500),
        seed: 77,
    };
    for round in 0..5u64 {
        let mut m = model;
        m.seed = 77 + round;
        let net: Network<Message> = Network::new(m);
        let a = net.register(SiteId(0));
        let _b = net.register(SiteId(1));
        let big_op = OpSpec::update(
            "doc",
            UpdateOp::Insert {
                target: Query::parse("/r").unwrap(),
                fragment: Fragment::elem_text("blob", "x".repeat(64 * 1024)),
                pos: InsertPos::Into,
            },
        );
        net.send(
            SiteId(1),
            SiteId(0),
            Message::ExecRemote {
                txn: TxnId(1),
                coordinator: SiteId(1),
                op_seq: 0,
                op: big_op,
                corr: 1,
                update_txn: true,
                doc_version: 1,
                fragment: false,
            },
        )
        .unwrap();
        net.send(
            SiteId(1),
            SiteId(0),
            Message::TerminateBatch {
                commits: vec![],
                aborts: vec![TxnId(1)],
            },
        )
        .unwrap();
        let first = a
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .expect("delivered");
        let second = a
            .recv_timeout(Duration::from_secs(10))
            .unwrap()
            .expect("delivered");
        assert!(
            matches!(first.payload, Message::ExecRemote { .. }),
            "round {round}: ExecRemote must arrive first, got {:?}",
            first.payload
        );
        assert!(
            matches!(second.payload, Message::TerminateBatch { .. }),
            "round {round}: TerminateBatch must arrive second, got {:?}",
            second.payload
        );
        net.shutdown();
    }
}
