//! Evidence that the coordinator pipelines distributed round-trips.
//!
//! The scheduler advances coordinated transactions through an explicit
//! state machine instead of blocking in a nested message pump, so one
//! scheduler thread can hold several transactions in `AwaitingRemoteOps`
//! at once. Under the old blocking design the per-coordinator in-flight
//! count could never exceed 1 — `Metrics::max_inflight_remote` is the
//! direct witness.

use dtx::core::{Cluster, ClusterConfig, OpSpec, ProtocolKind, SiteId, TxnSpec};
use dtx::net::LatencyModel;
use dtx::xpath::{Query, UpdateOp};
use std::time::Duration;

fn slow_lan(seed: u64) -> LatencyModel {
    // A noticeable fixed delay so remote round-trips dominate: while one
    // transaction's ExecRemote is on the wire, the coordinator has ample
    // time to dispatch the others.
    LatencyModel {
        fixed: Duration::from_millis(3),
        per_kib: Duration::ZERO,
        jitter: Duration::ZERO,
        seed,
    }
}

#[test]
fn coordinator_pipelines_distributed_transactions() {
    let mut config = ClusterConfig::new(2, ProtocolKind::Xdgl);
    config.latency = slow_lan(7);
    let cluster = Cluster::start(config);
    // Four disjoint documents, all replicated on both sites: every
    // update submitted at site 0 write-alls to both replicas, so each is
    // distributed, and none of them contend for locks. (Reads no longer
    // qualify here — read-only transactions are served from the local
    // snapshot without any round-trip.)
    let sites = [SiteId(0), SiteId(1)];
    let n = 4;
    for i in 0..n {
        cluster
            .load_document(&format!("r{i}"), &format!("<r><x>{i}</x></r>"), &sites)
            .unwrap();
    }
    let rxs: Vec<_> = (0..n)
        .map(|i| {
            cluster.submit_async(
                SiteId(0),
                TxnSpec::new(vec![OpSpec::update(
                    format!("r{i}"),
                    UpdateOp::Change {
                        target: Query::parse("/r/x").unwrap(),
                        new_value: format!("{}", i + 100),
                    },
                )]),
            )
        })
        .collect();
    for (i, rx) in rxs.into_iter().enumerate() {
        let out = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("terminates");
        assert!(out.committed(), "txn {i}: {:?}", out.status);
    }
    let inflight = cluster.metrics().max_inflight_remote();
    assert!(
        inflight >= 2,
        "coordinator must overlap remote round-trips (max in-flight = {inflight}; \
         a blocking nested-pump design pins this at 1)"
    );
    cluster.shutdown();
}

#[test]
fn pipelined_transactions_record_remote_phase_time() {
    let mut config = ClusterConfig::new(2, ProtocolKind::Xdgl);
    config.latency = slow_lan(11);
    let cluster = Cluster::start(config);
    let sites = [SiteId(0), SiteId(1)];
    cluster
        .load_document("d", "<r><x>1</x></r>", &sites)
        .unwrap();
    let out = cluster.submit(
        SiteId(0),
        TxnSpec::new(vec![OpSpec::update(
            "d",
            UpdateOp::Change {
                target: Query::parse("/r/x").unwrap(),
                new_value: "2".into(),
            },
        )]),
    );
    assert!(out.committed(), "{:?}", out.status);
    let summary = cluster.metrics().summary();
    // One distributed update: at least one network round-trip must have
    // been accounted to the AwaitingRemoteOps state.
    assert!(
        summary.phase_times.remote >= Duration::from_millis(3),
        "remote phase time {:?} must cover the ExecRemote round-trip",
        summary.phase_times.remote
    );
    cluster.shutdown();
}
