//! Process-mode integration: two [`SiteHost`]s meshed over real
//! localhost TCP, driven entirely through the `WIRE.md` control plane —
//! the in-process twin of the `dtx-site` binary pair that CI's wire
//! smoke spawns as OS processes.
//!
//! Pinned properties:
//!
//! 1. **Distributed commits over the wire** — a fragmented document
//!    split across the two nodes serves cross-node transactions from
//!    both coordinators; every submission terminates and a majority
//!    commits.
//! 2. **Catalog gossip convergence** — a placement registered on one
//!    node alone reaches the other node's catalog by anti-entropy
//!    within a few gossip periods, converging to the dominant version.
//! 3. **Per-pair FIFO on the socket transport** — the `tests/net_props.rs`
//!    storm shape replayed over a real TCP link: concurrent senders on
//!    size-varying frames, delivery order equals send order per
//!    `(from, to)` pair.

use dtx::core::wire::CtrlMsg;
use dtx::core::{CtrlClient, Message, OpSpec, SiteHost, SiteHostConfig, TxnId, TxnSpec, TxnStatus};
use dtx::net::socket::{SocketConfig, SocketTransport};
use dtx::net::SiteId;
use dtx::xpath::Query;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Boots `n` single-site hosts on OS-assigned ports and meshes them
/// (driver-side `Peers` + `Ready` handshake), returning the hosts and a
/// connected control client.
fn mesh(n: u16) -> (Vec<SiteHost>, CtrlClient) {
    let hosts: Vec<SiteHost> = (0..n)
        .map(|i| {
            let mut config = SiteHostConfig::new(&[SiteId(i)], n);
            // Tight gossip so convergence tests finish quickly.
            config.gossip_every = Duration::from_millis(10);
            SiteHost::start(config).expect("host starts")
        })
        .collect();
    let client = CtrlClient::bind().expect("driver binds");
    for h in &hosts {
        client
            .connect(&h.local_addr().to_string(), &[h.node_id()])
            .expect("driver connects");
    }
    let peers: Vec<(SiteId, String)> = hosts
        .iter()
        .map(|h| (h.node_id(), h.local_addr().to_string()))
        .collect();
    for h in &hosts {
        client
            .send(
                h.node_id(),
                &CtrlMsg::Peers {
                    total_sites: n,
                    peers: peers.clone(),
                },
            )
            .expect("peers sent");
    }
    for _ in 0..n {
        let ready = recv_match(&client, |m| matches!(m, CtrlMsg::Ready { .. }));
        assert!(ready, "every node reports Ready");
    }
    (hosts, client)
}

/// Receives until `want` matches (true) or ten seconds pass (false).
fn recv_match(client: &CtrlClient, want: impl Fn(&CtrlMsg) -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        match client.recv(deadline - Instant::now()) {
            Some((_, msg)) if want(&msg) => return true,
            Some(_) => continue,
            None => break,
        }
    }
    false
}

#[test]
fn two_hosts_commit_distributed_transactions_over_tcp() {
    let (hosts, client) = mesh(2);

    // One logical document fragmented across both nodes, loaded and
    // registered through the control plane exactly as the bench driver
    // does it: every fragment in place before the placement publishes.
    let frags = [
        (SiteId(0), "<site><a><id>1</id></a><a><id>2</id></a></site>"),
        (SiteId(1), "<site><a><id>3</id></a><a><id>4</id></a></site>"),
    ];
    for (site, xml) in frags {
        let corr = client.corr();
        client
            .send(
                site,
                &CtrlMsg::LoadDoc {
                    corr,
                    doc: "d".into(),
                    xml: xml.into(),
                },
            )
            .expect("load sent");
        let ok = recv_match(
            &client,
            |m| matches!(m, CtrlMsg::Ack { corr: c, ok: true, .. } if *c == corr),
        );
        assert!(ok, "fragment loads on {site:?}");
    }
    for h in &hosts {
        let corr = client.corr();
        client
            .send(
                h.node_id(),
                &CtrlMsg::Register {
                    corr,
                    doc: "d".into(),
                    sites: vec![SiteId(0), SiteId(1)],
                    fragmented: true,
                },
            )
            .expect("register sent");
        let ok = recv_match(
            &client,
            |m| matches!(m, CtrlMsg::Ack { corr: c, ok: true, .. } if *c == corr),
        );
        assert!(ok, "placement registers on {:?}", h.node_id());
    }

    // Cross-node reads from both coordinators: resolving `/site/a` needs
    // both fragments, so every transaction crosses the real wire.
    let total = 10usize;
    for i in 0..total {
        let corr = client.corr();
        client
            .send(
                SiteId((i % 2) as u16),
                &CtrlMsg::Submit {
                    corr,
                    spec: TxnSpec::new(vec![OpSpec::query(
                        "d",
                        Query::parse("/site/a/id").expect("query parses"),
                    )]),
                },
            )
            .expect("submit sent");
    }
    let mut committed = 0usize;
    for _ in 0..total {
        let deadline = Instant::now() + Duration::from_secs(30);
        let outcome = loop {
            match client.recv(deadline - Instant::now()) {
                Some((_, CtrlMsg::Outcome { status, .. })) => break Some(status),
                Some(_) => continue,
                None => break None,
            }
        };
        if let TxnStatus::Committed = outcome.expect("every submission terminates") {
            committed += 1;
        }
    }
    assert!(committed >= total / 2, "committed only {committed}/{total}");

    // Real bytes crossed the wire on both nodes.
    for h in &hosts {
        let (bytes_out, bytes_in, frames_out, frames_in) = h.wire_stats();
        assert!(
            bytes_out > 0 && bytes_in > 0 && frames_out > 0 && frames_in > 0,
            "node {:?} never used the wire: {bytes_out}/{bytes_in} B",
            h.node_id()
        );
    }

    client.shutdown();
    for h in hosts {
        h.shutdown();
    }
}

#[test]
fn catalog_gossip_converges_one_sided_registrations() {
    let (hosts, client) = mesh(2);

    // Register a placement on node 0 ONLY — node 1 can learn it from
    // anti-entropy gossip alone.
    let corr = client.corr();
    client
        .send(
            SiteId(0),
            &CtrlMsg::Register {
                corr,
                doc: "lonely".into(),
                sites: vec![SiteId(0)],
                fragmented: false,
            },
        )
        .expect("register sent");
    assert!(recv_match(&client, |m| {
        matches!(m, CtrlMsg::Ack { corr: c, ok: true, .. } if *c == corr)
    }));

    let deadline = Instant::now() + Duration::from_secs(10);
    let converged = loop {
        if !hosts[1].catalog().sites_of("lonely").is_empty() {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(converged, "node 1 never learned the gossiped placement");

    client.shutdown();
    for h in hosts {
        h.shutdown();
    }
}

#[test]
fn socket_transport_preserves_per_pair_fifo_under_storm() {
    // The net_props storm shape over a real TCP link: two transports,
    // two sites each, concurrent senders, frames of wildly varying size
    // (TerminateBatch length varies 1..~180 txn ids). FIFO must hold
    // per (from, to) pair purely from send-order + TCP ordering.
    const PER_LINK: u64 = 150;
    let a: SocketTransport<Message> = SocketTransport::bind(
        &[SiteId(0), SiteId(1)],
        "127.0.0.1:0",
        SocketConfig::default(),
    )
    .expect("bind a");
    let b: SocketTransport<Message> = SocketTransport::bind(
        &[SiteId(2), SiteId(3)],
        "127.0.0.1:0",
        SocketConfig::default(),
    )
    .expect("bind b");
    let (tx, rx) = mpsc::channel::<(SiteId, SiteId, u64)>();
    b.set_msg_handler(Some(std::sync::Arc::new(
        move |env: dtx::net::Envelope<Message>| {
            // seq rides in the first commit id; frame size varies with the
            // batch length.
            if let Message::TerminateBatch { commits, .. } = &env.payload {
                let _ = tx.send((env.from, env.to, commits[0].0));
            }
        },
    )));
    a.connect(&b.local_addr().to_string(), &[SiteId(2), SiteId(3)])
        .expect("a dials b");

    let mut size = {
        let mut x = 0xBEEFu64;
        move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            1 + (x % 180) as usize
        }
    };
    // Interleave all four (from, to) pairs from two threads.
    std::thread::scope(|scope| {
        for from in [SiteId(0), SiteId(1)] {
            let a = a.clone();
            let mut sizes: Vec<usize> = (0..PER_LINK * 2).map(|_| size()).collect();
            scope.spawn(move || {
                for seq in 0..PER_LINK {
                    for to in [SiteId(2), SiteId(3)] {
                        let n = sizes.pop().expect("enough sizes");
                        let batch = Message::TerminateBatch {
                            commits: std::iter::once(TxnId(seq))
                                .chain((0..n as u64).map(TxnId))
                                .collect(),
                            aborts: vec![],
                        };
                        a.send_msg(from, to, &batch).expect("send");
                    }
                }
            });
        }
    });

    let mut next = std::collections::HashMap::<(SiteId, SiteId), u64>::new();
    for _ in 0..(4 * PER_LINK) {
        let (from, to, seq) = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("storm delivers");
        let want = next.entry((from, to)).or_insert(0);
        assert_eq!(seq, *want, "link {from:?} -> {to:?} out of send order");
        *want += 1;
    }

    a.shutdown();
    b.shutdown();
}
