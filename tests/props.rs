//! Property-based tests over the substrate invariants:
//! parser/serializer round-trips, update/undo inverses, DataGuide
//! conservativeness, and lock-matrix soundness under the protocols.

use dtx::dataguide::DataGuide;
use dtx::locks::{LockMode, LockProtocol, LockTable, ProtocolKind, TxnId, TxnMode};
use dtx::xml::{Document, Fragment, InsertPos};
use dtx::xpath::{apply_update, eval, undo_update, Query, UpdateOp};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_label() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "a", "b", "c", "item", "name", "price", "person", "note",
    ])
    .prop_map(str::to_owned)
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes XML-special characters to exercise escaping.
    "[ -~]{0,12}".prop_map(|s| s)
}

fn arb_fragment(depth: u32) -> impl Strategy<Value = Fragment> {
    let leaf = prop_oneof![
        arb_text().prop_map(|v| Fragment::Text { value: v }),
        (arb_label(), arb_text()).prop_map(|(l, v)| Fragment::Attribute { label: l, value: v }),
        arb_label().prop_map(|l| Fragment::Element { label: l, children: vec![] }),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        (arb_label(), prop::collection::vec(inner, 0..4))
            .prop_map(|(label, children)| Fragment::Element { label, children })
    })
}

fn arb_doc() -> impl Strategy<Value = Document> {
    (arb_label(), prop::collection::vec(arb_fragment(3), 1..5)).prop_map(|(root, frags)| {
        Document::from_fragment(&Fragment::Element { label: root, children: frags })
            .expect("element root")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // XML substrate
    // ------------------------------------------------------------------

    #[test]
    fn serialize_parse_round_trip(doc in arb_doc()) {
        let xml = doc.to_xml();
        let reparsed = Document::parse(&xml).expect("serializer output parses");
        // Serialization is a fixpoint (text nodes that are pure whitespace
        // are dropped by the parser, so compare the reparsed form).
        prop_assert_eq!(reparsed.to_xml(), Document::parse(&reparsed.to_xml()).unwrap().to_xml());
        reparsed.check_integrity().unwrap();
    }

    #[test]
    fn remove_unremove_is_identity(doc in arb_doc(), seed in 0u32..100) {
        let mut doc = doc;
        let root = doc.root();
        let kids = doc.children(root).unwrap().to_vec();
        prop_assume!(!kids.is_empty());
        let victim = kids[(seed as usize) % kids.len()];
        let before = doc.to_xml();
        let removed = doc.remove(victim).unwrap();
        let after_remove = doc.to_xml();
        prop_assert_ne!(&before, &after_remove);
        doc.unremove(&removed).unwrap();
        prop_assert_eq!(doc.to_xml(), before);
        doc.check_integrity().unwrap();
    }

    // ------------------------------------------------------------------
    // Update language
    // ------------------------------------------------------------------

    #[test]
    fn applied_updates_undo_exactly(
        frag in arb_fragment(2),
        value in arb_text(),
        which in 0u8..3,
    ) {
        // Build a document with a known path to operate on.
        let mut doc = Document::parse(
            "<r><x><y>old</y></x><x><y>two</y></x></r>"
        ).unwrap();
        let target = Query::parse("/r/x").unwrap();
        let op = match which {
            0 => UpdateOp::Insert { target, fragment: frag, pos: InsertPos::Into },
            1 => UpdateOp::Change { target: Query::parse("/r/x/y").unwrap(), new_value: value },
            _ => UpdateOp::Rename { target: Query::parse("/r/x/y").unwrap(), new_label: "z".into() },
        };
        let before = doc.to_xml();
        let undo = apply_update(&mut doc, &op).unwrap();
        undo_update(&mut doc, &undo).unwrap();
        prop_assert_eq!(doc.to_xml(), before);
        doc.check_integrity().unwrap();
    }

    // ------------------------------------------------------------------
    // DataGuide
    // ------------------------------------------------------------------

    #[test]
    fn dataguide_covers_every_labelled_node(doc in arb_doc()) {
        let guide = DataGuide::build(&doc);
        for node in doc.descendants(doc.root()) {
            if doc.node(node).unwrap().kind.label().is_some() || node == doc.root() {
                prop_assert!(
                    guide.classify(&doc, node).is_some(),
                    "node {} with path {:?} must classify",
                    node,
                    doc.label_path(node).unwrap()
                );
            }
        }
        // Guide is never larger than the document's labelled-node count.
        let labelled = doc
            .descendants(doc.root())
            .filter(|&n| doc.node(n).unwrap().kind.label().is_some())
            .count();
        prop_assert!(guide.len() <= labelled.max(1));
    }

    #[test]
    fn guide_match_is_superset_of_eval(doc in arb_doc()) {
        // Structural guarantee: for any child-path query, every document
        // node the query matches classifies to a guide node the guide
        // match returns (the guide is a conservative summary).
        let guide = DataGuide::build(&doc);
        for q in ["/a/b", "/a/*", "//name", "//item/price", "/person//note"] {
            let query = Query::parse(q).unwrap();
            let matched_guides = guide.match_query(&query);
            for hit in eval(&doc, &query) {
                if doc.node(hit).unwrap().is_text() {
                    continue; // text hits are summarized by parents
                }
                let g = guide.classify(&doc, hit).expect("classifies");
                prop_assert!(
                    matched_guides.contains(&g),
                    "query {} matched doc node {} whose guide {} was not locked",
                    q, hit, g
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Locking
    // ------------------------------------------------------------------

    #[test]
    fn lock_table_never_grants_incompatible(
        requests in prop::collection::vec((1u64..5, 0u32..6, 0usize..8), 1..40)
    ) {
        let modes = LockMode::ALL;
        let mut table = LockTable::new();
        let mut granted: Vec<(TxnId, dtx::dataguide::GuideId, LockMode)> = Vec::new();
        for (txn, node, mode_idx) in requests {
            let txn = TxnId(txn);
            let node = dtx::dataguide::GuideId(node);
            let mode = modes[mode_idx % modes.len()];
            if table.try_acquire(txn, node, mode).is_granted() {
                // Invariant: compatible with everything other txns hold.
                for (other, n, m) in &granted {
                    if *other != txn && *n == node {
                        prop_assert!(
                            m.compatible(mode),
                            "granted {mode} on {node:?} against {other}'s {m}"
                        );
                    }
                }
                granted.push((txn, node, mode));
            }
        }
    }

    #[test]
    fn protocols_always_lock_query_targets(doc in arb_doc()) {
        // For every protocol, evaluating a query after acquiring its lock
        // requests must be safe: the target guide nodes are covered by at
        // least one requested lock (directly or via a tree lock above).
        let mut guide = DataGuide::build(&doc);
        for kind in [ProtocolKind::Xdgl, ProtocolKind::Node2Pl, ProtocolKind::DocLock] {
            let protocol = kind.instantiate();
            for q in ["/a/b", "//name", "/item/price"] {
                let query = Query::parse(q).unwrap();
                let targets = guide.match_query(&query);
                let reqs = protocol.query_requests(&mut guide, &query, TxnMode::ReadOnly);
                for t in &targets {
                    let covered = reqs.iter().any(|r| {
                        r.node == *t
                            || (r.mode.is_tree()
                                && (r.node == *t || guide.is_ancestor(r.node, *t)))
                    });
                    prop_assert!(
                        covered,
                        "{}: query {} target {} uncovered by {:?}",
                        kind.name(), q, t, reqs
                    );
                }
            }
        }
    }
}
