//! Crash-recovery integration tests: the kill-the-coordinator-mid-2PC
//! matrix (one case per [`CrashPoint`]), participant restart with
//! byte-identical replay, silent-drop timeout termination, seeded
//! message-loss chaos, and snapshot-version release on `drop_replica`.

use dtx::core::{
    AbortReason, Cluster, ClusterConfig, CrashPoint, OpResult, OpSpec, ProtocolKind, SiteId,
    TxnSpec, TxnStatus,
};
use dtx::xml::{Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};
use std::time::{Duration, Instant};

const DOC: &str = "<products>\
    <product><id>4</id><name>Monitor</name><price>120.00</price></product>\
    <product><id>14</id><name>Printer</name><price>55.50</price></product>\
    </products>";

fn q(s: &str) -> Query {
    Query::parse(s).unwrap()
}

/// The transaction the coordinator dies holding: observable as a third
/// `<product>` iff it committed.
fn insert_txn(id: u32) -> TxnSpec {
    TxnSpec::new(vec![OpSpec::update(
        "d",
        UpdateOp::Insert {
            target: q("/products"),
            fragment: Fragment::elem(
                "product",
                vec![
                    Fragment::elem_text("id", id.to_string()),
                    Fragment::elem_text("name", "Mouse"),
                    Fragment::elem_text("price", "9.99"),
                ],
            ),
            pos: InsertPos::Into,
        },
    )])
}

fn change_txn(v: &str) -> TxnSpec {
    TxnSpec::new(vec![OpSpec::update(
        "d",
        UpdateOp::Change {
            target: q("/products/product[id=14]/price"),
            new_value: v.into(),
        },
    )])
}

fn count_products(cluster: &Cluster, site: SiteId) -> usize {
    let out = cluster.submit(
        site,
        TxnSpec::new(vec![OpSpec::query("d", q("/products/product/id"))]),
    );
    assert!(out.committed(), "read@{site}: {:?}", out.status);
    match &out.results[0] {
        OpResult::Query { values } => values.len(),
        other => panic!("{other:?}"),
    }
}

/// Tight recovery timings so in-doubt resolution, cooperative
/// termination and orphan cleanup all play out within a test run.
/// Tracing is armed: every crash test doubles as a trace-invariant
/// certification run (see [`certify_trace`]).
fn chaos_cfg() -> ClusterConfig {
    let mut cfg = ClusterConfig::new(3, ProtocolKind::Xdgl).with_tracing();
    cfg.scheduler.remote_timeout = Duration::from_millis(300);
    cfg.scheduler.indoubt_period = Duration::from_millis(25);
    cfg.scheduler.orphan_timeout = Duration::from_millis(200);
    cfg
}

/// Collects the cluster's event trace (after `shutdown` quiesced every
/// scheduler) and certifies it against the protocol laws: forced
/// `Prepared` before any yes-vote, forced `Decision` before any commit
/// batch, per-link FIFO, every lock released, every pin unpinned — even
/// across kills, restarts and message loss.
fn certify_trace(tracer: &dtx::trace::Tracer, context: &str) {
    let trace = tracer.collect();
    assert!(!trace.events.is_empty(), "{context}: empty trace");
    let report = dtx::trace::check::check(&trace);
    assert!(report.ok(), "{context}: {}", report.summary());
}

fn assert_replicas_identical(cluster: &Cluster, a: SiteId, b: SiteId) {
    let da = cluster.instance(a).dump_document("d").unwrap();
    let db = cluster.instance(b).dump_document("d").unwrap();
    assert_eq!(da.xml, db.xml, "replica data diverged between {a} and {b}");
    assert_eq!(
        da.guide_wire, db.guide_wire,
        "DataGuides diverged between {a} and {b}"
    );
}

/// The coordinator-kill matrix. Site 0 coordinates an update of a
/// document it does not replicate (sites 1 and 2 hold it), dies at
/// `point`, and is restarted from its WAL. Every surviving site and the
/// restarted coordinator must converge on the same outcome — presumed
/// abort before the decision is forced, commit after.
fn run_coordinator_crash(point: CrashPoint, expect_commit: bool) {
    let mut cluster = Cluster::start(chaos_cfg());
    cluster
        .load_document("d", DOC, &[SiteId(1), SiteId(2)])
        .unwrap();

    cluster.arm_crash(SiteId(0), point);
    let rx = cluster.submit_async(SiteId(0), insert_txn(13));
    cluster.wait_site_down(SiteId(0));
    // The client never hears back: its coordinator took the outcome down
    // with it (the reply channel is dropped, not answered).
    assert!(
        rx.recv_timeout(Duration::from_millis(100)).is_err(),
        "a dead coordinator must not answer its client"
    );

    if matches!(point, CrashPoint::AfterDecideSendOne) {
        // The decision reached site 1 only. Cooperative termination must
        // converge the survivors *without* the coordinator: site 2's
        // in-doubt sweep gives up on the dead coordinator and asks its
        // peer, which vouches for the commit. The follow-up writer has
        // to wait out every lock the in-doubt transaction holds, so its
        // commit proves both survivors resolved.
        let out = cluster
            .submit_async(SiteId(1), change_txn("88.80"))
            .recv_timeout(Duration::from_secs(30))
            .expect("survivors converge without the coordinator");
        assert!(out.committed(), "{:?}", out.status);
        let report = cluster.restart_site(SiteId(0));
        assert_eq!(
            report.undelivered, 1,
            "the forced decision has no End record: restart must re-own it"
        );
    } else {
        let report = cluster.restart_site(SiteId(0));
        if matches!(point, CrashPoint::AfterDecide) {
            assert_eq!(
                report.undelivered, 1,
                "decision forced but never sent: restart must deliver it"
            );
        } else {
            assert_eq!(report.undelivered, 0);
            assert_eq!(report.in_doubt, 0, "the coordinator is never in doubt");
        }
        // A conflicting writer can only commit once every site resolved
        // the crashed transaction (in-doubt locks released).
        let out = cluster
            .submit_async(SiteId(1), change_txn("88.80"))
            .recv_timeout(Duration::from_secs(30))
            .expect("cluster converges after restart");
        assert!(out.committed(), "{:?}", out.status);
    }

    // All sites agree on whether the crashed transaction committed.
    let expected = if expect_commit { 3 } else { 2 };
    for s in [SiteId(0), SiteId(1), SiteId(2)] {
        assert_eq!(
            count_products(&cluster, s),
            expected,
            "site {s} disagrees on the crashed txn's outcome at {point:?}"
        );
    }
    assert_replicas_identical(&cluster, SiteId(1), SiteId(2));
    if matches!(point, CrashPoint::InRemoteOps) {
        assert!(
            cluster.metrics().orphan_aborts() >= 1,
            "participants must unilaterally abort orphaned work"
        );
    }
    let tracer = cluster.tracer().expect("chaos_cfg arms tracing");
    cluster.shutdown();
    certify_trace(&tracer, &format!("coordinator crash at {point:?}"));
}

#[test]
fn coordinator_killed_during_remote_ops_presumed_abort() {
    run_coordinator_crash(CrashPoint::InRemoteOps, false);
}

#[test]
fn coordinator_killed_after_prepare_presumed_abort() {
    run_coordinator_crash(CrashPoint::AfterPrepare, false);
}

#[test]
fn coordinator_killed_after_forced_decision_commits() {
    run_coordinator_crash(CrashPoint::AfterDecide, true);
}

#[test]
fn coordinator_killed_mid_commit_delivery_survivors_converge() {
    run_coordinator_crash(CrashPoint::AfterDecideSendOne, true);
}

#[test]
fn restarted_participant_replays_to_byte_identical_state() {
    let mut cluster = Cluster::start(chaos_cfg());
    cluster
        .load_document("d", DOC, &[SiteId(1), SiteId(2)])
        .unwrap();
    // A committed history with structural and value updates, all
    // two-phase (coordinator holds no replica).
    for i in 0..4 {
        let out = cluster.submit(SiteId(0), insert_txn(100 + i));
        assert!(out.committed(), "{:?}", out.status);
    }
    let out = cluster.submit(SiteId(0), change_txn("42.00"));
    assert!(out.committed(), "{:?}", out.status);
    assert!(cluster.metrics().prepare_rounds() >= 5);

    cluster.kill_site(SiteId(1));
    let report = cluster.restart_site(SiteId(1));
    assert_eq!(report.docs, 1, "one document image on the log");
    assert!(report.redo_applied >= 5, "{report:?}");
    assert!(report.committed >= 5, "{report:?}");
    assert_eq!(report.in_doubt, 0, "{report:?}");
    assert!(report.records > 0 && report.bytes > 0);

    // Repeating history lands on exactly the never-crashed replica's
    // bytes — data and DataGuide both.
    assert_replicas_identical(&cluster, SiteId(1), SiteId(2));

    // And the restarted replica is a first-class participant again.
    let out = cluster.submit(SiteId(0), change_txn("43.00"));
    assert!(out.committed(), "{:?}", out.status);
    assert_replicas_identical(&cluster, SiteId(1), SiteId(2));
    assert!(cluster.metrics().recoveries() >= 1);
    cluster.shutdown();
}

#[test]
fn silent_participant_is_timed_out_by_the_deadline_sweep() {
    // Satellite: a participant that never answers (its replies vanish on
    // the wire) must not hang the coordinator — the deadline sweep times
    // the operation out and aborts, and the abort delivery releases the
    // participant's locks.
    let cfg = chaos_cfg();
    let cluster = Cluster::start(cfg);
    cluster.load_document("d", DOC, &[SiteId(1)]).unwrap();
    cluster.block_link(SiteId(1), SiteId(0));

    let started = Instant::now();
    let out = cluster
        .submit_async(SiteId(0), change_txn("7.77"))
        .recv_timeout(Duration::from_secs(10))
        .expect("the deadline sweep must terminate the transaction");
    assert!(!out.committed(), "{:?}", out.status);
    assert!(
        matches!(
            out.status,
            TxnStatus::Aborted(AbortReason::RemoteTimeout) | TxnStatus::Failed(_)
        ),
        "{:?}",
        out.status
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "termination must come from the sweep, not the client guard"
    );
    assert!(cluster.net_dropped() > 0, "the drops must be accounted");

    // The abort batch reached site 1 (that direction is healthy), so its
    // locks are free: a local writer there commits.
    let out = cluster.submit(SiteId(1), change_txn("8.88"));
    assert!(out.committed(), "{:?}", out.status);
    cluster.heal_link(SiteId(1), SiteId(0));
    let out = cluster.submit(SiteId(0), change_txn("9.99"));
    assert!(out.committed(), "{:?}", out.status);
    cluster.shutdown();
}

#[test]
fn seeded_message_loss_never_diverges_replicas() {
    // Chaos: 30 % of messages silently dropped, seed-deterministically.
    // Individual transactions may abort or fail, but every one must
    // terminate, and after healing the replicas must be byte-identical —
    // a forced commit decision is never walked back (lost commit batches
    // are re-delivered, in-doubt participants resolve via their sweep).
    let cluster = Cluster::start(chaos_cfg());
    cluster
        .load_document("d", DOC, &[SiteId(1), SiteId(2)])
        .unwrap();
    cluster.set_message_drops(7, 300);

    let mut terminated = 0;
    let mut committed = 0;
    for i in 0..8 {
        let out = cluster
            .submit_async(SiteId(0), change_txn(&format!("{i}.50")))
            .recv_timeout(Duration::from_secs(30))
            .expect("every transaction terminates under message loss");
        terminated += 1;
        committed += usize::from(out.committed());
    }
    assert_eq!(terminated, 8);
    assert!(cluster.net_dropped() > 0, "the fault plan must have fired");

    // Heal and converge: a final write-all update has to wait out any
    // still-resolving in-doubt work before it can commit.
    cluster.set_message_drops(7, 0);
    let out = cluster
        .submit_async(SiteId(1), change_txn("100.00"))
        .recv_timeout(Duration::from_secs(30))
        .expect("cluster converges after healing");
    assert!(out.committed(), "{:?}", out.status);
    assert!(committed <= 8);
    assert_replicas_identical(&cluster, SiteId(1), SiteId(2));
    let tracer = cluster.tracer().expect("chaos_cfg arms tracing");
    cluster.shutdown();
    certify_trace(&tracer, "seeded message loss");
}

#[test]
fn drop_replica_releases_snapshot_versions() {
    // Satellite: retiring a replica must release its snapshot versions,
    // not just unpublish it from the catalog — the gauges fall.
    let cluster = Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl));
    cluster
        .load_document("d", DOC, &[SiteId(0), SiteId(1)])
        .unwrap();
    let out = cluster.submit(SiteId(0), change_txn("11.11"));
    assert!(out.committed(), "{:?}", out.status);

    let live_before = cluster.metrics().snapshots_live();
    let bytes_before = cluster.metrics().snapshot_bytes();
    assert!(live_before >= 2, "each replica holds a live version");
    assert!(bytes_before > 0);

    cluster.drop_replica("d", SiteId(1)).unwrap();
    let live_after = cluster.metrics().snapshots_live();
    let bytes_after = cluster.metrics().snapshot_bytes();
    assert!(
        live_after < live_before,
        "snapshot versions must be released: {live_before} -> {live_after}"
    );
    assert!(
        bytes_after < bytes_before,
        "snapshot bytes must fall: {bytes_before} -> {bytes_after}"
    );

    // The surviving replica still serves reads and takes updates.
    assert_eq!(count_products(&cluster, SiteId(0)), 2);
    let out = cluster.submit(SiteId(0), change_txn("12.12"));
    assert!(out.committed(), "{:?}", out.status);
    cluster.shutdown();
}
