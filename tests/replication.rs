//! Integration tests of the placement layer: read-one routing message
//! savings, policy end-to-end behavior, online re-replication under
//! traffic across placement-version bumps, DataGuide shipment on replica
//! bootstrap, and per-document version isolation.

use dtx::core::{
    AbortReason, Cluster, ClusterConfig, OpResult, OpSpec, PolicyKind, ProtocolKind, SiteId,
    TxnSpec, TxnStatus,
};
use dtx::net::LatencyModel;
use dtx::xpath::{Query, UpdateOp};
use std::time::Duration;

const DOC: &str = "<products>\
    <product><id>4</id><name>Monitor</name><price>120.00</price></product>\
    <product><id>14</id><name>Printer</name><price>55.50</price></product>\
    </products>";

fn q(s: &str) -> Query {
    Query::parse(s).unwrap()
}

fn read_txn() -> TxnSpec {
    TxnSpec::new(vec![OpSpec::query("d", q("/products/product/name"))])
}

/// A transaction whose read of "d" takes the *locked*, policy-routed
/// path: the leading update (on a scratch document hosted only at site
/// 0) makes the transaction updating, so its query goes through the
/// placement policy instead of the read-only snapshot path (which would
/// serve it from the coordinator's replica with zero messages).
fn locked_read_txn(scratch: &str) -> TxnSpec {
    TxnSpec::new(vec![
        OpSpec::update(
            scratch,
            UpdateOp::Change {
                target: q("/w/x"),
                new_value: "1".into(),
            },
        ),
        OpSpec::query("d", q("/products/product/name")),
    ])
}

const SCRATCH: &str = "<w><x>0</x></w>";

fn cluster_with_policy(sites: u16, policy: PolicyKind) -> Cluster {
    let config = ClusterConfig::new(sites, ProtocolKind::Xdgl).with_policy(policy);
    let cluster = Cluster::start(config);
    let all: Vec<SiteId> = (0..sites).map(SiteId).collect();
    cluster.load_document("d", DOC, &all).unwrap();
    cluster
}

/// Runs `n` locked-read transactions from site 0 and returns the
/// `remote_msgs` metric (coordinator → participant `ExecRemote`
/// dispatches). The scratch update executes locally at site 0, so every
/// remote dispatch counted comes from the policy-routed read of "d".
fn remote_msgs_for(policy: PolicyKind, n: usize) -> u64 {
    let cluster = cluster_with_policy(3, policy);
    cluster.load_document("w", SCRATCH, &[SiteId(0)]).unwrap();
    for _ in 0..n {
        let out = cluster.submit(SiteId(0), locked_read_txn("w"));
        assert!(out.committed(), "{policy:?}: {:?}", out.status);
        match &out.results[1] {
            OpResult::Query { values } => {
                assert_eq!(values, &vec!["Monitor".to_owned(), "Printer".to_owned()])
            }
            other => panic!("{other:?}"),
        }
    }
    let msgs = cluster.metrics().remote_msgs();
    cluster.shutdown();
    msgs
}

#[test]
fn read_one_routing_sends_fewer_remote_messages_than_write_all() {
    let n = 20;
    // Primary (the seed behavior) fans every replicated read to all 3
    // replicas: 2 remote dispatches per read from site 0.
    let primary = remote_msgs_for(PolicyKind::Primary, n);
    assert_eq!(primary, 2 * n as u64, "write-all reads cost |replicas|-1");
    // Locality serves every read from the coordinator's own replica.
    let locality = remote_msgs_for(PolicyKind::Locality, n);
    assert_eq!(locality, 0, "coordinator-local reads cost nothing");
    // Round-robin spreads reads: at most 1 remote dispatch per read.
    let round_robin = remote_msgs_for(PolicyKind::RoundRobin, n);
    assert!(round_robin <= n as u64, "read-one costs at most 1 per read");
    // Hotness-aware is also read-one.
    let hotness = remote_msgs_for(PolicyKind::HotnessAware, n);
    assert!(hotness <= n as u64);
    // The acceptance comparison: read-one < write-all.
    for (name, v) in [
        ("locality", locality),
        ("round-robin", round_robin),
        ("hotness-aware", hotness),
    ] {
        assert!(v < primary, "{name}: {v} must be < primary's {primary}");
    }
}

#[test]
fn every_policy_reads_correctly_from_every_site() {
    for policy in PolicyKind::ALL {
        let cluster = cluster_with_policy(3, policy);
        for s in cluster.sites() {
            let out = cluster.submit(s, read_txn());
            assert!(out.committed(), "{policy:?}@{s}: {:?}", out.status);
        }
        // Updates still reach every replica regardless of policy.
        let out = cluster.submit(
            SiteId(1),
            TxnSpec::new(vec![OpSpec::update(
                "d",
                UpdateOp::Change {
                    target: q("/products/product[id=4]/price"),
                    new_value: "99.99".into(),
                },
            )]),
        );
        assert!(out.committed(), "{policy:?}: {:?}", out.status);
        for s in cluster.sites() {
            let out = cluster.submit(
                s,
                TxnSpec::new(vec![OpSpec::query("d", q("/products/product[id=4]/price"))]),
            );
            match &out.results[0] {
                OpResult::Query { values } => {
                    assert_eq!(values, &vec!["99.99".to_owned()], "{policy:?}@{s}")
                }
                other => panic!("{other:?}"),
            }
        }
        cluster.shutdown();
    }
}

#[test]
fn re_replication_under_traffic_never_surfaces_stale_catalog() {
    // A hot replicated document is re-replicated mid-run: a new replica is
    // published and an old one dropped while clients keep reading from
    // every site. In-flight dispatches routed under the old epoch are
    // refused as stale and transparently re-routed — every transaction
    // must commit; StaleCatalog must never reach a client.
    let mut config = ClusterConfig::new(3, ProtocolKind::Xdgl).with_policy(PolicyKind::RoundRobin);
    // Real (LAN-ish) latency keeps dispatches in flight across the epoch
    // bumps, exercising the stale-refusal path rather than racing past it.
    config.latency = LatencyModel::lan(42);
    let cluster = Cluster::start(config);
    cluster
        .load_document("d", DOC, &[SiteId(0), SiteId(1)])
        .unwrap();

    let epoch_before = cluster.catalog().epoch();
    let mut receivers = Vec::new();
    let txns_per_site = 40;
    for round in 0..txns_per_site {
        for s in cluster.sites() {
            receivers.push(cluster.submit_async(s, read_txn()));
        }
        if round == 10 {
            // Publish a third replica under traffic...
            cluster.add_replica("d", SiteId(2)).unwrap();
        }
        if round == 20 {
            // ...and retire the first, also under traffic.
            cluster.drop_replica("d", SiteId(0)).unwrap();
        }
    }
    for rx in receivers {
        let out = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("transaction terminates");
        assert!(
            !matches!(out.status, TxnStatus::Aborted(AbortReason::StaleCatalog)),
            "StaleCatalog must never surface to the client"
        );
        assert!(out.committed(), "{:?}", out.status);
    }
    assert!(
        cluster.catalog().epoch() >= epoch_before + 2,
        "add + drop bump the epoch"
    );
    assert_eq!(cluster.catalog().sites_of("d"), vec![SiteId(1), SiteId(2)]);

    // The new replica serves correct data, and converges through a
    // write-all update after the epoch bumps.
    let out = cluster.submit(
        SiteId(1),
        TxnSpec::new(vec![OpSpec::update(
            "d",
            UpdateOp::Change {
                target: q("/products/product[id=14]/price"),
                new_value: "1.23".into(),
            },
        )]),
    );
    assert!(out.committed(), "{:?}", out.status);
    for s in [SiteId(1), SiteId(2)] {
        let out = cluster.submit(
            s,
            TxnSpec::new(vec![OpSpec::query(
                "d",
                q("/products/product[id=14]/price"),
            )]),
        );
        assert!(out.committed(), "{s}: {:?}", out.status);
        match &out.results[0] {
            OpResult::Query { values } => assert_eq!(values, &vec!["1.23".to_owned()], "{s}"),
            other => panic!("{other:?}"),
        }
    }

    // The versioned allocation reflects the move (site 0 still hosts data
    // but is unpublished; it renders as holding nothing).
    let table = cluster.render_allocation();
    assert!(table.contains(&format!("catalog epoch {}", cluster.catalog().epoch())));
    assert!(table.contains("s0: (empty)"), "{table}");
    assert!(table.contains("s1: d"), "{table}");
    assert!(table.contains("s2: d"), "{table}");
    cluster.shutdown();
}

#[test]
fn in_flight_dispatches_are_refused_stale_and_re_routed() {
    // Pin the stale-refusal path: with 150 ms of fixed message latency,
    // dispatches sent just before an (instant, catalog-only) replica drop
    // are still in flight when the epoch bumps. Participants must refuse
    // them and the coordinators must re-route — observable as a non-zero
    // `stale_reroutes` metric with every transaction still committing.
    let mut config = ClusterConfig::new(3, ProtocolKind::Xdgl).with_policy(PolicyKind::RoundRobin);
    config.latency = LatencyModel {
        fixed: Duration::from_millis(150),
        per_kib: Duration::ZERO,
        jitter: Duration::ZERO,
        seed: 1,
    };
    let cluster = Cluster::start(config);
    cluster
        .load_document("d", DOC, &[SiteId(0), SiteId(1), SiteId(2)])
        .unwrap();
    // Per-transaction scratch docs keep the updating transactions
    // disjoint (no lock contention) so all 12 dispatch concurrently.
    for i in 0..12 {
        cluster
            .load_document(&format!("w{i}"), SCRATCH, &[SiteId(0)])
            .unwrap();
    }
    // Round-robin from site 0 spreads the locked reads over all three
    // replicas: of 12 reads, 4 are local and 8 dispatch remotely.
    let receivers: Vec<_> = (0..12)
        .map(|i| cluster.submit_async(SiteId(0), locked_read_txn(&format!("w{i}"))))
        .collect();
    // Wait until every remote dispatch has been *sent* (metric-driven, no
    // blind sleep), then bump the epoch while the messages — 150 ms from
    // delivery — are provably still in flight.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while cluster.metrics().remote_msgs() < 8 {
        assert!(
            std::time::Instant::now() < deadline,
            "schedulers never dispatched the reads"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    cluster.drop_replica("d", SiteId(2)).unwrap();
    for rx in receivers {
        let out = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("transaction terminates");
        assert!(out.committed(), "{:?}", out.status);
    }
    assert!(
        cluster.metrics().stale_reroutes() > 0,
        "dispatches in flight across the epoch bump must be refused and re-routed"
    );
    cluster.shutdown();
}

#[test]
fn update_transactions_commit_across_an_epoch_bump() {
    // Update transactions in flight while the replica set grows: every
    // one terminates as a commit or a deadlock victim (crossing write-all
    // lock acquisitions at two sites can deadlock, exactly like the
    // paper's §2.4 scenario — the detector resolves it), never with
    // StaleCatalog, and the original replicas stay identical.
    let mut config = ClusterConfig::new(3, ProtocolKind::Xdgl).with_policy(PolicyKind::Locality);
    config.latency = LatencyModel::lan(7);
    let cluster = Cluster::start(config);
    cluster
        .load_document("d", DOC, &[SiteId(0), SiteId(1)])
        .unwrap();

    let mut receivers = Vec::new();
    for i in 0..20 {
        receivers.push(cluster.submit_async(
            SiteId((i % 2) as u16),
            TxnSpec::new(vec![OpSpec::update(
                "d",
                UpdateOp::Change {
                    target: q("/products/product[id=4]/price"),
                    new_value: format!("{i}.00"),
                },
            )]),
        ));
        if i == 5 {
            cluster.add_replica("d", SiteId(2)).unwrap();
        }
    }
    let mut committed = 0;
    for rx in receivers {
        let out = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("transaction terminates");
        assert!(
            !matches!(out.status, TxnStatus::Aborted(AbortReason::StaleCatalog)),
            "StaleCatalog must never surface to the client"
        );
        assert!(
            out.committed() || out.deadlocked(),
            "unexpected terminal status {:?}",
            out.status
        );
        committed += usize::from(out.committed());
    }
    assert!(committed >= 1, "contention must not starve every update");
    // The original replicas agree on the final price (every committed
    // update reached both), and the new replica serves reads.
    let mut seen = Vec::new();
    for s in [SiteId(0), SiteId(1)] {
        let out = cluster.submit(
            s,
            TxnSpec::new(vec![OpSpec::query("d", q("/products/product[id=4]/price"))]),
        );
        match &out.results[0] {
            OpResult::Query { values } => seen.push(values.clone()),
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(seen[0], seen[1]);
    let out = cluster.submit(SiteId(2), read_txn());
    assert!(out.committed(), "{:?}", out.status);
    cluster.shutdown();
}

#[test]
fn add_replica_ships_the_dataguide() {
    // Replica bootstrap must ship the source site's DataGuide alongside
    // the data: the new replica serves a structure-dependent query
    // without ever calling DataGuide::build. The metric counts every
    // from-scratch guide build in the cluster — initial loads build one
    // per site; add_replica must not add another.
    let cluster =
        Cluster::start(ClusterConfig::new(2, ProtocolKind::Xdgl).with_policy(PolicyKind::Locality));
    cluster.load_document("d", DOC, &[SiteId(0)]).unwrap();
    let builds_after_load = cluster.metrics().guides_built();
    assert_eq!(builds_after_load, 1, "initial load builds site 0's guide");

    cluster.add_replica("d", SiteId(1)).unwrap();
    assert_eq!(
        cluster.metrics().guides_built(),
        builds_after_load,
        "the new replica must adopt the shipped guide, not rebuild"
    );

    // Structure-dependent read served by the new replica itself (the
    // locality policy keeps it local — zero remote messages), against
    // the shipped guide's lock placement.
    let before_msgs = cluster.metrics().remote_msgs();
    let out = cluster.submit(
        SiteId(1),
        TxnSpec::new(vec![OpSpec::query("d", q("/products/product[id=14]/name"))]),
    );
    assert!(out.committed(), "{:?}", out.status);
    match &out.results[0] {
        OpResult::Query { values } => assert_eq!(values, &vec!["Printer".to_owned()]),
        other => panic!("{other:?}"),
    }
    assert_eq!(
        cluster.metrics().remote_msgs(),
        before_msgs,
        "locality read on the new replica stays local"
    );
    cluster.shutdown();
}

#[test]
fn unrelated_document_mutation_does_not_stale_refuse() {
    // Per-document placement versions: with 150 ms of fixed latency, a
    // placement mutation of document "other" lands while dispatches of
    // document "d" are provably in flight. Under the old catalog-global
    // epoch every one of them would be refused stale and re-routed; with
    // per-document versions none may be.
    let mut config = ClusterConfig::new(3, ProtocolKind::Xdgl).with_policy(PolicyKind::RoundRobin);
    config.latency = LatencyModel {
        fixed: Duration::from_millis(150),
        per_kib: Duration::ZERO,
        jitter: Duration::ZERO,
        seed: 1,
    };
    let cluster = Cluster::start(config);
    cluster
        .load_document("d", DOC, &[SiteId(0), SiteId(1), SiteId(2)])
        .unwrap();
    cluster.load_document("other", DOC, &[SiteId(0)]).unwrap();
    for i in 0..12 {
        cluster
            .load_document(&format!("w{i}"), SCRATCH, &[SiteId(0)])
            .unwrap();
    }
    let receivers: Vec<_> = (0..12)
        .map(|i| cluster.submit_async(SiteId(0), locked_read_txn(&format!("w{i}"))))
        .collect();
    // Wait until the remote dispatches of "d" are on the wire, then
    // mutate "other"'s placement while they are still in flight.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while cluster.metrics().remote_msgs() < 8 {
        assert!(
            std::time::Instant::now() < deadline,
            "schedulers never dispatched the reads"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    cluster.add_replica("other", SiteId(2)).unwrap();
    cluster.drop_replica("other", SiteId(0)).unwrap();
    for rx in receivers {
        let out = rx
            .recv_timeout(Duration::from_secs(120))
            .expect("transaction terminates");
        assert!(out.committed(), "{:?}", out.status);
    }
    assert_eq!(
        cluster.metrics().stale_reroutes(),
        0,
        "mutating another document's placement must not refuse in-flight dispatches of this one"
    );
    cluster.shutdown();
}
