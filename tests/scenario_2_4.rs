//! Integration test of the paper's §2.4 scenario (Figs. 2–6): two sites,
//! replicated d1 + single-site d2, crossing read→insert transactions that
//! can form a distributed deadlock, followed by the cleanly-committing t3.

use dtx::core::{Cluster, ClusterConfig, OpSpec, ProtocolKind, SiteId, TxnSpec};
use dtx::xml::{Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};
use std::time::Duration;

const D1: &str = "<people><person><id>4</id><name>John</name></person></people>";
const D2: &str = "<products>\
                    <product><id>4</id><description>Monitor</description><price>120.00</price></product>\
                    <product><id>14</id><description>Printer</description><price>55.50</price></product>\
                  </products>";

fn t1() -> TxnSpec {
    TxnSpec::new(vec![
        OpSpec::query("d1", Query::parse("/people/person[id=4]").unwrap()),
        OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: Query::parse("/products").unwrap(),
                fragment: Fragment::elem(
                    "product",
                    vec![
                        Fragment::elem_text("id", "13"),
                        Fragment::elem_text("description", "Mouse"),
                    ],
                ),
                pos: InsertPos::Into,
            },
        ),
    ])
}

fn t2() -> TxnSpec {
    TxnSpec::new(vec![
        OpSpec::query("d2", Query::parse("/products/product").unwrap()),
        OpSpec::update(
            "d1",
            UpdateOp::Insert {
                target: Query::parse("/people").unwrap(),
                fragment: Fragment::elem(
                    "person",
                    vec![
                        Fragment::elem_text("id", "22"),
                        Fragment::elem_text("name", "Patricia"),
                    ],
                ),
                pos: InsertPos::Into,
            },
        ),
    ])
}

fn scenario_cluster() -> Cluster {
    let mut config = ClusterConfig::new(2, ProtocolKind::Xdgl);
    config.scheduler.deadlock_period = Duration::from_millis(20);
    let cluster = Cluster::start(config);
    cluster
        .load_document("d1", D1, &[SiteId(0), SiteId(1)])
        .unwrap();
    cluster.load_document("d2", D2, &[SiteId(1)]).unwrap();
    cluster
}

#[test]
fn crossing_transactions_always_terminate() {
    // Run the interleaving repeatedly: every run must terminate both
    // transactions, commit at least one, and never corrupt the documents.
    for round in 0..10 {
        let cluster = scenario_cluster();
        let rx1 = cluster.submit_async(SiteId(0), t1());
        let rx2 = cluster.submit_async(SiteId(1), t2());
        let o1 = rx1
            .recv_timeout(Duration::from_secs(120))
            .expect("t1 terminates");
        let o2 = rx2
            .recv_timeout(Duration::from_secs(120))
            .expect("t2 terminates");
        assert!(
            o1.committed() || o2.committed(),
            "round {round}: at least one of the crossing transactions commits \
             (o1={:?}, o2={:?})",
            o1.status,
            o2.status
        );
        for o in [&o1, &o2] {
            assert!(
                o.committed() || o.deadlocked(),
                "round {round}: terminal status must be commit or deadlock abort, got {:?}",
                o.status
            );
        }
        // The aborted transaction's insert must have been rolled back:
        // person count reflects only committed work.
        let people = cluster.submit(
            SiteId(0),
            TxnSpec::new(vec![OpSpec::query(
                "d1",
                Query::parse("/people/person").unwrap(),
            )]),
        );
        let expected_people = if o2.committed() { 2 } else { 1 };
        match &people.results[0] {
            dtx::core::OpResult::Query { values } => {
                assert_eq!(
                    values.len(),
                    expected_people,
                    "round {round}: rollback integrity"
                )
            }
            other => panic!("{other:?}"),
        }
        cluster.shutdown();
    }
}

#[test]
fn t3_commits_after_the_conflict() {
    let cluster = scenario_cluster();
    let rx1 = cluster.submit_async(SiteId(0), t1());
    let rx2 = cluster.submit_async(SiteId(1), t2());
    let _ = rx1.recv_timeout(Duration::from_secs(120)).unwrap();
    let _ = rx2.recv_timeout(Duration::from_secs(120)).unwrap();

    // t3: query product 14 and insert Keyboard — no concurrency, commits.
    let t3 = TxnSpec::new(vec![
        OpSpec::query("d2", Query::parse("/products/product[id=14]").unwrap()),
        OpSpec::update(
            "d2",
            UpdateOp::Insert {
                target: Query::parse("/products").unwrap(),
                fragment: Fragment::elem(
                    "product",
                    vec![
                        Fragment::elem_text("id", "32"),
                        Fragment::elem_text("description", "Keyboard"),
                    ],
                ),
                pos: InsertPos::Into,
            },
        ),
    ]);
    let o3 = cluster.submit(SiteId(1), t3);
    assert!(o3.committed(), "{:?}", o3.status);
    let check = cluster.submit(
        SiteId(1),
        TxnSpec::new(vec![OpSpec::query(
            "d2",
            Query::parse("/products/product[id=32]/description").unwrap(),
        )]),
    );
    match &check.results[0] {
        dtx::core::OpResult::Query { values } => assert_eq!(values, &vec!["Keyboard".to_owned()]),
        other => panic!("{other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn forced_distributed_deadlock_is_detected() {
    // Create the Fig. 6 situation repeatedly. A deadlock can be resolved
    // by either of the paper's two mechanisms: the periodic distributed
    // detector (Algorithm 4, which aborts the *newest* transaction in the
    // circle) or the immediate deadlock tag when a lock request closes a
    // cycle in a site's local graph (Algorithm 3 l. 9-10, upon which the
    // coordinator aborts the *requesting* transaction, Alg. 1 l. 19-20).
    // In both cases the guarantee is: the victim's partner makes progress
    // and commits.
    let mut saw_deadlock = false;
    for _ in 0..25 {
        let cluster = scenario_cluster();
        let rx1 = cluster.submit_async(SiteId(0), t1());
        let rx2 = cluster.submit_async(SiteId(1), t2());
        let o1 = rx1.recv_timeout(Duration::from_secs(120)).unwrap();
        let o2 = rx2.recv_timeout(Duration::from_secs(120)).unwrap();
        if o1.deadlocked() || o2.deadlocked() {
            saw_deadlock = true;
            let survivor = if o1.deadlocked() { &o2 } else { &o1 };
            assert!(
                survivor.committed(),
                "the deadlock victim's partner must commit (o1={:?}, o2={:?})",
                o1.status,
                o2.status
            );
        }
        cluster.shutdown();
        if saw_deadlock {
            break;
        }
    }
    // With clean interleavings all rounds may serialize; the run is still
    // a pass — the other scenario tests assert termination and integrity.
}
