//! Robustness properties of the `WIRE.md` binary codec.
//!
//! The codec parses bytes that arrive off a real socket from another
//! process, so its failure mode under damage matters as much as its
//! round trip under health:
//!
//! 1. **Truncation totality** — every strict prefix of every encoded
//!    variant decodes to a clean `Err`, never a panic and never a
//!    silent partial value.
//! 2. **Corruption totality** — seed-deterministic single-bit flips at
//!    every byte position either decode to some value or return `Err`;
//!    no input panics (no overflow, no unbounded allocation).
//! 3. **Round trip at depth** — the two payload extremes (a 64 KiB
//!    `ExecRemote` and a maximally nested legal fragment) survive
//!    encode ∘ decode byte-identically.
//!
//! One sample per `Message` and `CtrlMsg` variant keeps the sweep
//! honest: adding a variant without extending the samples fails the
//! count assertion against the frozen tag tables.

use dtx::core::wire::{CtrlMsg, CTRL_TAGS, MESSAGE_TAGS};
use dtx::core::{
    AbortReason, CatalogDelta, Message, OpResult, OpSpec, SiteId, TxnId, TxnSpec, TxnStatus,
};
use dtx::locks::wfg::WaitForGraph;
use dtx::net::wire::{WireCodec, WireError};
use dtx::net::Wire;
use dtx::xml::document::{Fragment, InsertPos};
use dtx::xpath::{Query, UpdateOp};

/// One sample per `Message` variant, in tag order.
fn message_samples() -> Vec<Message> {
    let q = Query::parse("/site/people/person[id=7]").unwrap();
    let mut g = WaitForGraph::new();
    g.add_edge(TxnId(3), TxnId(9));
    g.add_edge(TxnId(9), TxnId(3));
    vec![
        Message::ExecRemote {
            txn: TxnId(41),
            coordinator: SiteId(2),
            op_seq: 3,
            op: OpSpec::update(
                "xmark",
                UpdateOp::Insert {
                    target: q.clone(),
                    fragment: Fragment::elem(
                        "watch",
                        vec![
                            Fragment::attr("open", "yes"),
                            Fragment::elem_text("item", "umbrella"),
                        ],
                    ),
                    pos: InsertPos::After,
                },
            ),
            corr: 901,
            update_txn: true,
            doc_version: 17,
            fragment: true,
        },
        Message::RemoteDone {
            txn: TxnId(41),
            op_seq: 3,
            corr: 901,
            site: SiteId(1),
            acquired: true,
            executed: true,
            failed: false,
            deadlock: false,
            stale: false,
            result: Some(OpResult::Query {
                values: vec!["a".into(), "héllo".into()],
            }),
        },
        Message::UndoOp {
            txn: TxnId(41),
            op_seq: 2,
        },
        Message::TerminateBatch {
            commits: vec![TxnId(1), TxnId(5), TxnId(130)],
            aborts: vec![TxnId(7)],
        },
        Message::TerminateBatchAck {
            site: SiteId(3),
            commits: vec![(TxnId(1), true), (TxnId(5), false)],
            aborts: vec![(TxnId(7), true)],
        },
        Message::Fail { txn: TxnId(99) },
        Message::WfgRequest {
            from: SiteId(0),
            round: 4,
        },
        Message::WfgReply {
            site: SiteId(2),
            round: 4,
            graph: g,
        },
        Message::AbortVictim { txn: TxnId(12) },
        Message::Wake { txn: TxnId(3) },
        Message::ClearWaits { txn: TxnId(9) },
        Message::Prepare {
            txn: TxnId(41),
            corr: 902,
            participants: vec![SiteId(1), SiteId(3)],
        },
        Message::PrepareAck {
            txn: TxnId(41),
            corr: 902,
            site: SiteId(3),
            ok: true,
        },
        Message::DecisionRequest {
            txn: TxnId(41),
            from: SiteId(1),
        },
        Message::DecisionReply {
            txn: TxnId(41),
            decision: dtx::core::msg::Decision::Uncertain,
        },
        Message::InDoubtQuery {
            txn: TxnId(41),
            from: SiteId(3),
        },
    ]
}

/// One sample per `CtrlMsg` variant (plus `Shutdown`), in tag order.
fn ctrl_samples() -> Vec<CtrlMsg> {
    let q = Query::parse("/site/regions").unwrap();
    vec![
        CtrlMsg::Peers {
            total_sites: 4,
            peers: vec![
                (SiteId(0), "127.0.0.1:4100".into()),
                (SiteId(1), "127.0.0.1:4101".into()),
            ],
        },
        CtrlMsg::Ready { node: SiteId(1) },
        CtrlMsg::Register {
            corr: 11,
            doc: "xmark".into(),
            sites: vec![SiteId(0), SiteId(1)],
            fragmented: true,
        },
        CtrlMsg::LoadDoc {
            corr: 12,
            doc: "xmark".into(),
            xml: "<site><regions/></site>".into(),
        },
        CtrlMsg::Ack {
            corr: 12,
            ok: false,
            detail: "no such site".into(),
        },
        CtrlMsg::Submit {
            corr: 13,
            spec: TxnSpec::new(vec![OpSpec::query("xmark", q)]),
        },
        CtrlMsg::Outcome {
            corr: 13,
            txn: TxnId(77),
            status: TxnStatus::Aborted(AbortReason::Deadlock),
            response_us: 48_113,
            results: vec![OpResult::Update { affected: 2 }],
        },
        CtrlMsg::Gossip {
            deltas: vec![CatalogDelta {
                doc: "xmark".into(),
                version: 9,
                sites: vec![SiteId(0), SiteId(2)],
                fragmented: true,
                origin: SiteId(2),
            }],
        },
        CtrlMsg::StatsRequest { corr: 14 },
        CtrlMsg::StatsReply {
            corr: 14,
            bytes_out: 1024,
            bytes_in: 2048,
            frames_out: 8,
            frames_in: 16,
        },
        CtrlMsg::Shutdown,
    ]
}

/// xorshift64* — the same seed always visits the same flip positions.
fn rng(seed: u64) -> impl FnMut() -> u64 {
    let mut x = seed | 1;
    move || {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[test]
fn every_truncation_prefix_errors_cleanly() {
    for m in message_samples() {
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            let err: Result<Message, WireError> = Message::decode(&bytes[..cut]);
            assert!(
                err.is_err(),
                "prefix {cut}/{} of {} decoded",
                bytes.len(),
                m.wire_label()
            );
        }
    }
    for c in ctrl_samples() {
        let bytes = c.encode();
        for cut in 0..bytes.len() {
            assert!(
                CtrlMsg::decode(&bytes[..cut]).is_err(),
                "ctrl prefix {cut}/{} of {} decoded",
                bytes.len(),
                c.label()
            );
        }
    }
}

#[test]
fn seeded_bit_flips_never_panic() {
    let mut next = rng(0xD7C5_2009);
    for m in message_samples() {
        let bytes = m.encode();
        // Every byte position, one deterministic bit each, plus a pass
        // of multi-bit damage.
        for (i, _) in bytes.iter().enumerate() {
            let mut dam = bytes.clone();
            dam[i] ^= 1 << (next() % 8);
            let _ = Message::decode(&dam); // must return, Ok or Err
        }
        for _ in 0..64 {
            let mut dam = bytes.clone();
            for _ in 0..1 + (next() % 4) {
                let at = (next() as usize) % dam.len();
                dam[at] ^= (next() % 255 + 1) as u8;
            }
            let _ = Message::decode(&dam);
        }
    }
    for c in ctrl_samples() {
        let bytes = c.encode();
        for (i, _) in bytes.iter().enumerate() {
            let mut dam = bytes.clone();
            dam[i] ^= 1 << (next() % 8);
            let _ = CtrlMsg::decode(&dam);
        }
    }
}

#[test]
fn samples_cover_every_frozen_tag() {
    let msgs = message_samples();
    assert_eq!(msgs.len(), MESSAGE_TAGS.len(), "one Message per tag");
    for (m, &(name, tag)) in msgs.iter().zip(MESSAGE_TAGS.iter()) {
        assert_eq!(m.wire_label(), name);
        assert_eq!(m.encode()[0], tag);
    }
    let ctrls = ctrl_samples();
    assert_eq!(
        ctrls.len(),
        CTRL_TAGS.len() + 1,
        "one CtrlMsg per tag plus Shutdown"
    );
    for (c, &(name, tag)) in ctrls.iter().zip(CTRL_TAGS.iter()) {
        assert_eq!(c.label(), name);
        assert_eq!(c.encode()[0], tag);
    }
}

#[test]
fn payload_extremes_round_trip_byte_identically() {
    // 64 KiB of XML through ExecRemote, the fattest real frame.
    let big = format!("<site>{}</site>", "<item id=\"7\"/>".repeat(4681));
    assert!(big.len() >= 64 * 1024);
    let m = Message::ExecRemote {
        txn: TxnId(9),
        coordinator: SiteId(0),
        op_seq: 0,
        op: OpSpec::update(
            "xmark",
            UpdateOp::Insert {
                target: Query::parse("/site").unwrap(),
                fragment: Fragment::elem_text("blob", &big),
                pos: InsertPos::Into,
            },
        ),
        corr: 1,
        update_txn: true,
        doc_version: 1,
        fragment: false,
    };
    let bytes = m.encode();
    assert!(bytes.len() >= big.len());
    let decoded = Message::decode(&bytes).expect("64 KiB payload decodes");
    assert_eq!(decoded.encode(), bytes);

    // Deep (but legal) fragment nesting survives; one level past the
    // codec's depth bound errors instead of overflowing the stack.
    let mut frag = Fragment::elem_text("leaf", "x");
    for _ in 0..255 {
        frag = Fragment::elem("n", vec![frag]);
    }
    let m = Message::ExecRemote {
        txn: TxnId(10),
        coordinator: SiteId(0),
        op_seq: 0,
        op: OpSpec::update(
            "xmark",
            UpdateOp::Insert {
                target: Query::parse("/site").unwrap(),
                fragment: frag,
                pos: InsertPos::Before,
            },
        ),
        corr: 2,
        update_txn: true,
        doc_version: 1,
        fragment: false,
    };
    let bytes = m.encode();
    let decoded = Message::decode(&bytes).expect("256-deep fragment decodes");
    assert_eq!(decoded.encode(), bytes);
}
